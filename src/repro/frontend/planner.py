"""Physical planning: resolved+optimized logical plan → physical plan."""

from __future__ import annotations

from repro.errors import PlanningError
from repro.frontend import ast
from repro.frontend.logical import (
    LogicalAggregate,
    LogicalDistinct,
    LogicalFilter,
    LogicalJoin,
    LogicalLimit,
    LogicalNode,
    LogicalProject,
    LogicalScan,
    LogicalSort,
    LogicalSubqueryAlias,
)
from repro.frontend.physical import (
    PhysicalDistinct,
    PhysicalFilter,
    PhysicalHashAggregate,
    PhysicalHashJoin,
    PhysicalLimit,
    PhysicalNestedLoopJoin,
    PhysicalNode,
    PhysicalProject,
    PhysicalRename,
    PhysicalScan,
    PhysicalSort,
    walk_physical,
)


def to_physical(plan: LogicalNode) -> PhysicalNode:
    """Translate a logical plan into a physical plan.

    Joins with extracted equality keys become hash joins; keyless joins fall
    back to nested-loop joins.  Aggregates become hash aggregates; the
    remaining operators map one-to-one.
    """
    physical = _convert(plan)
    _plan_embedded_subqueries(physical)
    return physical


def _convert(plan: LogicalNode) -> PhysicalNode:
    if isinstance(plan, LogicalScan):
        return PhysicalScan(plan.table, plan.alias, list(plan.fields))
    if isinstance(plan, LogicalFilter):
        return PhysicalFilter(_convert(plan.child), plan.condition)
    if isinstance(plan, LogicalProject):
        return PhysicalProject(_convert(plan.child), list(plan.exprs),
                               list(plan.names), list(plan.types))
    if isinstance(plan, LogicalJoin):
        left, right = _convert(plan.left), _convert(plan.right)
        if plan.left_keys:
            return PhysicalHashJoin(left, right, plan.kind,
                                    list(plan.left_keys), list(plan.right_keys),
                                    plan.residual)
        condition = plan.residual if plan.residual is not None else plan.condition
        kind = "cross" if plan.kind == "cross" and condition is None else plan.kind
        return PhysicalNestedLoopJoin(left, right, kind, condition)
    if isinstance(plan, LogicalAggregate):
        return PhysicalHashAggregate(_convert(plan.child), list(plan.group_exprs),
                                     list(plan.group_names), list(plan.group_types),
                                     list(plan.aggregates))
    if isinstance(plan, LogicalSort):
        return PhysicalSort(_convert(plan.child), list(plan.keys))
    if isinstance(plan, LogicalLimit):
        return PhysicalLimit(_convert(plan.child), plan.count)
    if isinstance(plan, LogicalDistinct):
        return PhysicalDistinct(_convert(plan.child))
    if isinstance(plan, LogicalSubqueryAlias):
        return PhysicalRename(_convert(plan.child), plan.schema())
    raise PlanningError(f"cannot plan logical node {type(plan).__name__}")


def _plan_embedded_subqueries(physical: PhysicalNode) -> None:
    """Convert logical subplans embedded in expressions to physical plans.

    Uncorrelated IN / EXISTS / scalar subqueries stay in expression form and
    are executed at runtime; their subplans must therefore also be physical.
    """
    from repro.frontend.optimizer import node_expressions_physical

    for node in walk_physical(physical):
        for expr in node_expressions_physical(node):
            for sub in ast.walk_expr(expr):
                if isinstance(sub, (ast.InSubquery, ast.ExistsSubquery, ast.ScalarSubquery)):
                    if sub.subplan is not None and isinstance(sub.subplan, LogicalNode):
                        sub.subplan = to_physical(sub.subplan)
