"""Physical plan nodes (the Spark-physical-plan analogue TQP consumes).

The physical plan fixes operator algorithms (hash join, hash aggregate,
sort...).  It is the hand-off format between the frontend database system and
TQP's parsing layer, mirroring how the paper feeds Spark SQL physical plans
into TQP.  The row-engine baseline executes the same physical plans, so both
engines share everything up to this point.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.columnar import LogicalType
from repro.frontend.ast import Expr
from repro.frontend.logical import AggregateCall, Field


class PhysicalNode:
    """Base class for physical operators."""

    def children(self) -> list["PhysicalNode"]:
        raise NotImplementedError

    def schema(self) -> list[Field]:
        raise NotImplementedError

    def field_names(self) -> list[str]:
        return [f.name for f in self.schema()]

    def describe(self) -> str:
        return type(self).__name__.replace("Physical", "")

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclasses.dataclass(eq=False)
class PhysicalScan(PhysicalNode):
    table: str
    alias: str
    fields: list[Field]

    def children(self) -> list[PhysicalNode]:
        return []

    def schema(self) -> list[Field]:
        return self.fields

    def describe(self) -> str:
        return f"TableScan({self.table} as {self.alias}, cols={len(self.fields)})"


@dataclasses.dataclass(eq=False)
class PhysicalFilter(PhysicalNode):
    child: PhysicalNode
    condition: Expr

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def schema(self) -> list[Field]:
        return self.child.schema()


@dataclasses.dataclass(eq=False)
class PhysicalProject(PhysicalNode):
    child: PhysicalNode
    exprs: list[Expr]
    names: list[str]
    types: list[LogicalType]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def schema(self) -> list[Field]:
        return [Field(n, t) for n, t in zip(self.names, self.types)]

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


@dataclasses.dataclass(eq=False)
class PhysicalHashJoin(PhysicalNode):
    left: PhysicalNode
    right: PhysicalNode
    kind: str  # inner, left, semi, anti
    left_keys: list[Expr]
    right_keys: list[Expr]
    residual: Optional[Expr] = None

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def schema(self) -> list[Field]:
        if self.kind in ("semi", "anti"):
            return self.left.schema()
        return list(self.left.schema()) + list(self.right.schema())

    def describe(self) -> str:
        return f"HashJoin[{self.kind}](keys={len(self.left_keys)})"


@dataclasses.dataclass(eq=False)
class PhysicalNestedLoopJoin(PhysicalNode):
    left: PhysicalNode
    right: PhysicalNode
    kind: str  # inner, cross, left, semi, anti
    condition: Optional[Expr] = None

    def children(self) -> list[PhysicalNode]:
        return [self.left, self.right]

    def schema(self) -> list[Field]:
        if self.kind in ("semi", "anti"):
            return self.left.schema()
        return list(self.left.schema()) + list(self.right.schema())

    def describe(self) -> str:
        return f"NestedLoopJoin[{self.kind}]"


@dataclasses.dataclass(eq=False)
class PhysicalHashAggregate(PhysicalNode):
    child: PhysicalNode
    group_exprs: list[Expr]
    group_names: list[str]
    group_types: list[LogicalType]
    aggregates: list[AggregateCall]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def schema(self) -> list[Field]:
        fields = [Field(n, t) for n, t in zip(self.group_names, self.group_types)]
        fields.extend(Field(a.output_name, a.output_type) for a in self.aggregates)
        return fields

    def describe(self) -> str:
        return (f"HashAggregate(groups={len(self.group_exprs)}, "
                f"aggs={len(self.aggregates)})")


@dataclasses.dataclass(eq=False)
class PhysicalSort(PhysicalNode):
    child: PhysicalNode
    keys: list[tuple[Expr, bool]]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def schema(self) -> list[Field]:
        return self.child.schema()

    def describe(self) -> str:
        return f"Sort(keys={len(self.keys)})"


@dataclasses.dataclass(eq=False)
class PhysicalLimit(PhysicalNode):
    child: PhysicalNode
    count: int

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def schema(self) -> list[Field]:
        return self.child.schema()

    def describe(self) -> str:
        return f"Limit({self.count})"


@dataclasses.dataclass(eq=False)
class PhysicalDistinct(PhysicalNode):
    child: PhysicalNode

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def schema(self) -> list[Field]:
        return self.child.schema()


@dataclasses.dataclass(eq=False)
class PhysicalRename(PhysicalNode):
    """Renames the child's output columns (derived tables / CTE aliases)."""

    child: PhysicalNode
    output_fields: list[Field]

    def children(self) -> list[PhysicalNode]:
        return [self.child]

    def schema(self) -> list[Field]:
        return self.output_fields

    def describe(self) -> str:
        return f"Rename({len(self.output_fields)} cols)"


def walk_physical(node: PhysicalNode):
    yield node
    for child in node.children():
        yield from walk_physical(child)
