"""Catalog of registered tables (name → schema, statistics + ingestion DataFrame).

Besides the schema, registration collects the table's **storage statistics**
(row count, per-column NDV/null counts, and morsel-aligned zone maps — see
:mod:`repro.storage.statistics`).  The statistics are recomputed whenever a
table is re-registered, so they always describe the current table version:
the planner reads them for selectivity estimates and scan pruning, and the
session's encoding policy reads the NDV counts when choosing dictionary
encodings.
"""

from __future__ import annotations

import dataclasses

from repro.core.columnar import LogicalType
from repro.dataframe import DataFrame
from repro.errors import CatalogError

_KIND_TO_LOGICAL = {
    "int": LogicalType.INT,
    "float": LogicalType.FLOAT,
    "bool": LogicalType.BOOL,
    "date": LogicalType.DATE,
    "string": LogicalType.STRING,
}


@dataclasses.dataclass
class TableSchema:
    """Schema of a registered table: ordered column names and logical types."""

    name: str
    columns: dict[str, LogicalType]

    def column_type(self, column: str) -> LogicalType:
        try:
            return self.columns[column]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {column!r}"
            ) from None


class Catalog:
    """Holds the tables a session can query."""

    def __init__(self, collect_statistics: bool = True) -> None:
        self._tables: dict[str, DataFrame] = {}
        self._schemas: dict[str, TableSchema] = {}
        self._statistics: dict[str, object] = {}
        #: Whether ``register`` collects storage statistics (zone maps, NDV).
        self.collect_statistics = collect_statistics

    def register(self, name: str, frame: DataFrame, replace: bool = True) -> None:
        """Register ``frame`` under ``name`` (lower-cased, SQL style).

        Also (re)computes the table's storage statistics, so zone maps and
        NDV estimates always describe the currently registered data — a
        re-registration can never leave stale statistics behind.
        """
        key = name.lower()
        if not replace and key in self._tables:
            raise CatalogError(f"table {name!r} is already registered")
        columns = {
            column: _KIND_TO_LOGICAL[kind] for column, kind in frame.dtypes().items()
        }
        self._tables[key] = frame
        self._schemas[key] = TableSchema(key, columns)
        self._statistics.pop(key, None)
        if self.collect_statistics:
            from repro.storage.statistics import compute_table_statistics

            self._statistics[key] = compute_table_statistics(frame)

    def unregister(self, name: str) -> None:
        key = name.lower()
        self._tables.pop(key, None)
        self._schemas.pop(key, None)
        self._statistics.pop(key, None)

    def statistics(self, name: str):
        """Storage statistics of a registered table (``None`` if absent)."""
        return self._statistics.get(name.lower())

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def dataframe(self, name: str) -> DataFrame:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"unknown table: {name!r}")
        return self._tables[key]

    def schema(self, name: str) -> TableSchema:
        key = name.lower()
        if key not in self._schemas:
            raise CatalogError(f"unknown table: {name!r}")
        return self._schemas[key]
