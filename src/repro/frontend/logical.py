"""Logical plan nodes produced by the analyzer and rewritten by the optimizer.

Every node exposes an output schema as an ordered list of :class:`Field`
objects with *fully qualified* column names (``alias.column`` for base tables,
the projection alias for derived columns), so downstream layers never need to
re-resolve names.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.columnar import LogicalType
from repro.frontend.ast import Expr


@dataclasses.dataclass(frozen=True)
class Field:
    """One output column of a plan node."""

    name: str
    ltype: LogicalType


@dataclasses.dataclass(eq=False)
class AggregateCall:
    """One aggregate computed by a :class:`LogicalAggregate` node."""

    func: str                 # sum, avg, min, max, count
    expr: Optional[Expr]      # None for count(*)
    output_name: str
    distinct: bool = False
    output_type: LogicalType = LogicalType.FLOAT


class LogicalNode:
    """Base class: every logical operator has children and an output schema."""

    def children(self) -> list["LogicalNode"]:
        raise NotImplementedError

    def replace_children(self, new_children: list["LogicalNode"]) -> None:
        raise NotImplementedError

    def schema(self) -> list[Field]:
        raise NotImplementedError

    def field_names(self) -> list[str]:
        return [f.name for f in self.schema()]

    # -- pretty printing ---------------------------------------------------

    def describe(self) -> str:
        return type(self).__name__.replace("Logical", "")

    def pretty(self, indent: int = 0) -> str:
        lines = ["  " * indent + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclasses.dataclass(eq=False)
class LogicalScan(LogicalNode):
    """Scan of a registered base table under an alias."""

    table: str
    alias: str
    fields: list[Field]

    def children(self) -> list[LogicalNode]:
        return []

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        if new_children:
            raise ValueError("scan has no children")

    def schema(self) -> list[Field]:
        return self.fields

    def describe(self) -> str:
        return f"Scan({self.table} as {self.alias})"


@dataclasses.dataclass(eq=False)
class LogicalFilter(LogicalNode):
    child: LogicalNode
    condition: Expr

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        (self.child,) = new_children

    def schema(self) -> list[Field]:
        return self.child.schema()

    def describe(self) -> str:
        return "Filter"


@dataclasses.dataclass(eq=False)
class LogicalProject(LogicalNode):
    child: LogicalNode
    exprs: list[Expr]
    names: list[str]
    types: list[LogicalType]

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        (self.child,) = new_children

    def schema(self) -> list[Field]:
        return [Field(n, t) for n, t in zip(self.names, self.types)]

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


@dataclasses.dataclass(eq=False)
class LogicalJoin(LogicalNode):
    """Join of two children.

    ``kind`` is one of ``inner``, ``left``, ``semi``, ``anti``, ``cross``.
    ``condition`` is an arbitrary boolean expression over both sides; the
    optimizer extracts equality keys into ``left_keys`` / ``right_keys`` and
    leaves the remainder in ``residual``.
    """

    left: LogicalNode
    right: LogicalNode
    kind: str
    condition: Optional[Expr] = None
    left_keys: list[Expr] = dataclasses.field(default_factory=list)
    right_keys: list[Expr] = dataclasses.field(default_factory=list)
    residual: Optional[Expr] = None

    def children(self) -> list[LogicalNode]:
        return [self.left, self.right]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        self.left, self.right = new_children

    def schema(self) -> list[Field]:
        if self.kind in ("semi", "anti"):
            return self.left.schema()
        right_fields = self.right.schema()
        if self.kind == "left":
            # Columns of the right side become nullable; logical types unchanged.
            right_fields = list(right_fields)
        return list(self.left.schema()) + right_fields

    def describe(self) -> str:
        return f"Join[{self.kind}]"


@dataclasses.dataclass(eq=False)
class LogicalAggregate(LogicalNode):
    child: LogicalNode
    group_exprs: list[Expr]
    group_names: list[str]
    group_types: list[LogicalType]
    aggregates: list[AggregateCall]

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        (self.child,) = new_children

    def schema(self) -> list[Field]:
        fields = [Field(n, t) for n, t in zip(self.group_names, self.group_types)]
        fields.extend(Field(a.output_name, a.output_type) for a in self.aggregates)
        return fields

    def describe(self) -> str:
        aggs = ", ".join(f"{a.func}->{a.output_name}" for a in self.aggregates)
        return f"Aggregate(groups={self.group_names}, aggs=[{aggs}])"


@dataclasses.dataclass(eq=False)
class LogicalSort(LogicalNode):
    child: LogicalNode
    keys: list[tuple[Expr, bool]]  # (expression, ascending)

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        (self.child,) = new_children

    def schema(self) -> list[Field]:
        return self.child.schema()

    def describe(self) -> str:
        return "Sort"


@dataclasses.dataclass(eq=False)
class LogicalLimit(LogicalNode):
    child: LogicalNode
    count: int

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        (self.child,) = new_children

    def schema(self) -> list[Field]:
        return self.child.schema()

    def describe(self) -> str:
        return f"Limit({self.count})"


@dataclasses.dataclass(eq=False)
class LogicalDistinct(LogicalNode):
    child: LogicalNode

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        (self.child,) = new_children

    def schema(self) -> list[Field]:
        return self.child.schema()

    def describe(self) -> str:
        return "Distinct"


@dataclasses.dataclass(eq=False)
class LogicalSubqueryAlias(LogicalNode):
    """Renames the output of a derived table / CTE to ``alias.column``."""

    child: LogicalNode
    alias: str

    def children(self) -> list[LogicalNode]:
        return [self.child]

    def replace_children(self, new_children: list[LogicalNode]) -> None:
        (self.child,) = new_children

    def schema(self) -> list[Field]:
        out = []
        for field in self.child.schema():
            base = field.name.split(".")[-1]
            out.append(Field(f"{self.alias}.{base}", field.ltype))
        return out

    def describe(self) -> str:
        return f"SubqueryAlias({self.alias})"


def walk_plan(node: LogicalNode):
    """Yield every node of the plan tree (pre-order)."""
    yield node
    for child in node.children():
        yield from walk_plan(child)
