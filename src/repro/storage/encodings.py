"""Compressed column encodings: dictionary and run-length.

An encoding is a small object attached to a :class:`~repro.core.columnar.
TensorColumn` that reinterprets the column's ``tensor``:

* :class:`DictionaryEncoding` — the column tensor holds ``(n,)`` int32 *codes*
  into a ``(k × m)`` dictionary of padded code-point rows.  The dictionary is
  built with ``np.unique`` and is therefore **sorted**, which makes code order
  agree with lexicographic string order — equality, IN, GROUP BY, DISTINCT and
  ORDER BY can all run directly on the codes.
* :class:`RunLengthEncoding` — the column tensor holds the ``(r,)`` run
  *values* of a sorted or low-cardinality numeric/date column; the encoding
  carries the matching ``(r,)`` run lengths and the logical row count.  A
  constant column is the one-run special case.

Both decodes are single tensor ops (``take`` resp. ``repeat``), so lazy
decoding composes with tracing and the simulated device cost models: an
operator that cannot work on the encoded form pays one visible kernel to
materialize the plain column.

``encode_table`` is the conversion entry point shared by the session and the
executor; the ``mode`` string it takes (``auto`` / ``dictionary`` / ``rle`` /
``off``) is part of the plan-cache and conversion-cache keys, so changing the
encoding configuration can never serve tensors traced against another layout.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.core.columnar import LogicalType, TensorColumn, encode_dates, encode_strings
from repro.errors import ExecutionError
from repro.tensor import Tensor, ops
from repro.tensor.device import Device, parse_device

#: Encoding configuration values accepted by :func:`encode_table` (and by
#: ``ExecutionOptions.encoding``).
ENCODING_MODES = ("auto", "dictionary", "rle", "off")

#: Dictionary-encode a string column only while distinct values stay below
#: this fraction of the rows — near-unique columns (comments, names) would pay
#: a dictionary as large as the data plus a decode on every access.
DICTIONARY_MAX_NDV_RATIO = 0.5

#: Run-length-encode only when the run count is at most this fraction of the
#: rows (below it the two run tensors are at least 2x smaller than the data).
RLE_MAX_RUN_RATIO = 0.5

#: Columns smaller than this are never worth encoding.
MIN_ENCODE_ROWS = 16


class DictionaryEncoding:
    """Dictionary encoding for string columns: int32 codes + sorted dictionary."""

    kind = "dictionary"

    __slots__ = ("dictionary",)

    def __init__(self, dictionary: Tensor):
        if dictionary.ndim != 2:
            raise ExecutionError("string dictionaries must be (k x m) tensors")
        self.dictionary = dictionary

    @property
    def cardinality(self) -> int:
        return self.dictionary.shape[0]

    @property
    def width(self) -> int:
        return self.dictionary.shape[1]

    def validate(self, tensor: Tensor, ltype: LogicalType) -> None:
        if ltype != LogicalType.STRING:
            raise ExecutionError("dictionary encoding applies to string columns")
        if tensor.ndim != 1:
            raise ExecutionError("dictionary codes must be 1-d tensors")

    def num_rows(self, tensor: Tensor) -> int:
        return tensor.shape[0]

    def decode(self, tensor: Tensor) -> Tensor:
        """Materialize the ``(n × m)`` code-point matrix (one ``take`` kernel)."""
        return ops.take(self.dictionary, ops.cast(tensor, "int64"), axis=0)

    def to(self, device: Device | str) -> "DictionaryEncoding":
        return DictionaryEncoding(self.dictionary.to(device))

    def parts(self) -> list[tuple[str, Tensor]]:
        """Auxiliary tensors for input flattening (graph backends)."""
        return [("dict", self.dictionary)]

    def with_parts(self, parts: dict[str, Tensor]) -> "DictionaryEncoding":
        return DictionaryEncoding(parts["dict"])

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DictionaryEncoding(cardinality={self.cardinality}, width={self.width})"


class RunLengthEncoding:
    """Run-length encoding: the column tensor holds run values, this holds
    run lengths plus the logical row count (``rows == sum(lengths)``)."""

    kind = "rle"

    __slots__ = ("lengths", "rows")

    def __init__(self, lengths: Tensor, rows: int):
        if lengths.ndim != 1:
            raise ExecutionError("run lengths must be 1-d tensors")
        self.lengths = lengths
        self.rows = int(rows)

    @property
    def num_runs(self) -> int:
        return self.lengths.shape[0]

    @property
    def is_constant(self) -> bool:
        return self.num_runs <= 1

    def validate(self, tensor: Tensor, ltype: LogicalType) -> None:
        if ltype == LogicalType.STRING:
            raise ExecutionError("run-length encoding applies to 1-d columns")
        if tensor.ndim != 1 or tensor.shape[0] != self.lengths.shape[0]:
            raise ExecutionError("run values and run lengths must align")

    def num_rows(self, tensor: Tensor) -> int:
        return self.rows

    def decode(self, tensor: Tensor) -> Tensor:
        """Materialize the ``(n,)`` column (one ``repeat`` kernel)."""
        return ops.repeat(tensor, self.lengths)

    def slice_rows(self, tensor: Tensor, start: int, length: int) -> Tensor:
        """Decode only rows ``[start, start + length)``.

        The run overlap is resolved python-side from the run lengths — sound
        wherever static slicing itself is sound (the runs are input data,
        pinned to the table version) — so only the overlapping runs pay the
        ``repeat`` kernel.  This is what keeps zone-map pruning from decoding
        the very blocks it skips.
        """
        if length <= 0:
            return ops.narrow(tensor, 0, 0, 0)
        lengths = self.lengths.numpy()
        ends = np.cumsum(lengths)
        starts = ends - lengths
        stop = min(start + length, self.rows)
        first = int(np.searchsorted(ends, start, side="right"))
        last = int(np.searchsorted(starts, stop, side="left"))
        if first >= last:
            return ops.narrow(tensor, 0, 0, 0)
        sub = np.array(lengths[first:last], dtype=np.int64)
        sub[0] -= start - int(starts[first])
        sub[-1] -= int(ends[last - 1]) - stop
        return ops.repeat(ops.narrow(tensor, 0, first, last - first),
                          ops.tensor(sub, device=tensor.device))

    def to(self, device: Device | str) -> "RunLengthEncoding":
        return RunLengthEncoding(self.lengths.to(device), self.rows)

    def parts(self) -> list[tuple[str, Tensor]]:
        return [("runs", self.lengths)]

    def with_parts(self, parts: dict[str, Tensor]) -> "RunLengthEncoding":
        return RunLengthEncoding(parts["runs"], self.rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"RunLengthEncoding(runs={self.num_runs}, rows={self.rows})"


# -- numpy-side encoders ------------------------------------------------------


def dictionary_encode(values: Iterable, device: Device | str = "cpu"
                      ) -> TensorColumn:
    """Dictionary-encode python/numpy strings into a codes + dictionary column.

    The dictionary rows are the sorted distinct values, so the produced codes
    are order-preserving (``code_a < code_b  <=>  str_a < str_b``).
    """
    dev = parse_device(device)
    cleaned = np.array(["" if v is None else str(v) for v in values], dtype=object)
    uniques, inverse = np.unique(cleaned, return_inverse=True)
    dictionary = encode_strings(list(uniques))
    codes = ops.tensor(inverse.astype(np.int32), device=dev)
    return TensorColumn(codes, LogicalType.STRING,
                        encoding=DictionaryEncoding(ops.tensor(dictionary, device=dev)))


def run_length_encode(array: np.ndarray, ltype: LogicalType,
                      device: Device | str = "cpu") -> TensorColumn:
    """Run-length-encode a 1-d numeric/date/bool numpy array."""
    dev = parse_device(device)
    if len(array) == 0:
        values, lengths = array, np.zeros(0, dtype=np.int64)
    else:
        boundaries = np.flatnonzero(array[1:] != array[:-1]) + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [len(array)]))
        values = array[starts]
        lengths = (ends - starts).astype(np.int64)
    encoding = RunLengthEncoding(ops.tensor(lengths, device=dev), rows=len(array))
    return TensorColumn(ops.tensor(values, device=dev), ltype, encoding=encoding)


def _run_count(array: np.ndarray) -> int:
    if len(array) == 0:
        return 0
    return int(np.count_nonzero(array[1:] != array[:-1])) + 1


def encode_column(array: np.ndarray, mode: str = "auto",
                  ndv: Optional[int] = None,
                  device: Device | str = "cpu") -> TensorColumn:
    """Convert one numpy column, choosing an encoding under ``mode``.

    ``ndv`` is an optional precomputed distinct-value count (from the catalog
    statistics); without it the dictionary decision pays one ``np.unique``.
    """
    if mode not in ENCODING_MODES:
        raise ExecutionError(f"unknown encoding mode {mode!r} "
                             f"(expected one of {ENCODING_MODES})")
    kind = array.dtype.kind
    rows = len(array)
    if mode == "off" or rows < MIN_ENCODE_ROWS:
        return TensorColumn.from_numpy(array, device=device)

    if kind in "OU":
        if mode in ("auto", "dictionary"):
            if ndv is None:
                ndv = len(np.unique(np.array(
                    ["" if v is None else str(v) for v in array], dtype=object)))
            if ndv <= max(1, int(rows * DICTIONARY_MAX_NDV_RATIO)):
                return dictionary_encode(array, device=device)
        return TensorColumn.from_numpy(array, device=device)

    if mode in ("auto", "rle") and kind in "Mifb":
        if kind == "M":
            raw, ltype = encode_dates(array), LogicalType.DATE
        elif kind == "b":
            raw, ltype = array, LogicalType.BOOL
        elif kind == "f":
            raw, ltype = array.astype(np.float64), LogicalType.FLOAT
        else:
            raw, ltype = array.astype(np.int64), LogicalType.INT
        if _run_count(raw) <= int(rows * RLE_MAX_RUN_RATIO):
            return run_length_encode(raw, ltype, device=device)
    return TensorColumn.from_numpy(array, device=device)


def encode_table(frame, fields: Iterable, mode: str = "auto",
                 column_ndv: Optional[dict[str, int]] = None,
                 device: Device | str = "cpu") -> dict[str, TensorColumn]:
    """Convert the named DataFrame columns for one scan.

    ``fields`` are the scan's (possibly qualified) field objects; the mapping
    returned is keyed by the qualified field name, matching what the scan
    operators expect.  Used by both ``TQPSession.prepare_inputs`` and
    ``Executor.prepare_inputs`` so the session-side conversion cache and a
    standalone executor always agree on the storage layout.
    """
    columns: dict[str, TensorColumn] = {}
    for field in fields:
        name = field.name
        base = name.split(".", 1)[1] if "." in name else name
        ndv = (column_ndv or {}).get(base)
        columns[name] = encode_column(frame[base], mode=mode, ndv=ndv,
                                      device=device)
    return columns
