"""Zone-map scan pruning and statistics-based selectivity estimation.

The planner extracts **prunable conjuncts** from a filter that sits directly
on a base-table scan: conjunctive range / equality / IN predicates comparing a
scanned column against literals or bind parameters.  At execution time the
scan checks each conjunct against the table's zone maps
(:mod:`repro.storage.statistics`) and drops every block that cannot contain a
matching row — before a single kernel touches the block's data.

Pruning is *conservative*: the original filter still runs over the surviving
rows, so results are bit-identical to the unpruned plan; a conjunct the
matcher does not understand simply never prunes.

Parameterized conjuncts resolve at **bind time**: on the eager backend the
bound python values are folded into the zone-map check per execution, while a
traced program (whose block layout must stay binding-independent) lowers the
same check into tensor ops over the zone-map tensors
(:func:`block_mask_tensor`) so the traced graph re-evaluates block survival
from the runtime parameter inputs on every binding.

The same conjunct machinery powers :func:`estimate_selectivity`, the
statistics feedback into the planner's ``PARALLEL_THRESHOLD_ROWS`` decision.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Mapping, Optional, Sequence

import numpy as np

from repro.core.columnar import LogicalType
from repro.core.tuning import DEFAULT_TUNING
from repro.frontend import ast
from repro.storage.statistics import ColumnStatistics, TableStatistics
from repro.tensor import Tensor, ops
from repro.tensor.device import Device, parse_device

_COMPARISONS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "=": "eq"}
_FLIPPED = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le", "eq": "eq"}

#: Selectivity assumed for a conjunct whose value is a bind parameter (the
#: planner must choose a plan before any binding exists).
PARAM_SELECTIVITY = 0.3

#: Minimum zone-map block count for a scan to be worth pruning: below this the
#: per-execution survival check (and, in a traced program, the per-row block
#: mask) costs more than skipping a couple of tiny blocks could save.
#: Canonical home: :class:`repro.core.tuning.Tuning`; re-exported here for
#: existing importers.
MIN_PRUNING_BLOCKS = DEFAULT_TUNING.min_pruning_blocks

#: Maximum :func:`repro.storage.statistics.zone_discrimination` ratio at which
#: a parameterized conjunct is still compiled into a traced program.
MAX_TRACED_DISCRIMINATION = 0.5


def annotate_discrimination(conjuncts: Sequence[PruningConjunct],
                            stats: TableStatistics) -> list[PruningConjunct]:
    """Mark each conjunct with whether its column's zone map discriminates."""
    from repro.storage.statistics import zone_discrimination

    out = []
    for conjunct in conjuncts:
        column_stats = stats.column(conjunct.column)
        ratio = (zone_discrimination(column_stats)
                 if column_stats is not None else 1.0)
        out.append(dataclasses.replace(
            conjunct, discriminative=ratio <= MAX_TRACED_DISCRIMINATION))
    return out

#: Floor for combined selectivity estimates (guards the row estimate against
#: multiplying many correlated conjuncts down to zero).
MIN_SELECTIVITY = 1e-4


@dataclasses.dataclass(frozen=True)
class Operand:
    """One comparison operand: a literal python value or a parameter name."""

    value: Any = None
    param: Optional[str] = None

    @property
    def is_param(self) -> bool:
        return self.param is not None

    def resolve(self, params: Optional[Mapping[str, Any]]) -> Any:
        if not self.is_param:
            return self.value
        if params is None or self.param not in params:
            return None
        return params[self.param]


@dataclasses.dataclass(frozen=True)
class PruningConjunct:
    """One zone-map-checkable conjunct: ``column <op> operand(s)``."""

    column: str                    # field name in the scan's output schema
    kind: str                      # int | float | date | string
    op: str                        # lt | le | gt | ge | eq | in
    operands: tuple                # one Operand (comparisons) or several (IN)
    #: Whether the column's zone map can actually discriminate blocks (set by
    #: the planner from :func:`repro.storage.statistics.zone_discrimination`).
    #: A traced program only lowers *discriminative* parameterized conjuncts
    #: into tensor ops — on unclustered columns the check could never skip a
    #: block, so compiling it in would be pure per-execution overhead.
    discriminative: bool = True

    @property
    def has_params(self) -> bool:
        return any(op.is_param for op in self.operands)

    def describe(self) -> str:
        ops_text = ", ".join(
            f":{o.param}" if o.is_param else repr(o.value) for o in self.operands)
        return f"{self.column} {self.op} {ops_text}"


# -- conjunct extraction ------------------------------------------------------


def split_conjuncts(expr: ast.Expr) -> list[ast.Expr]:
    """Flatten a predicate into its top-level AND conjuncts."""
    if isinstance(expr, ast.BinaryOp) and expr.op == "and":
        return split_conjuncts(expr.left) + split_conjuncts(expr.right)
    return [expr]


_PRUNABLE_KINDS = {
    LogicalType.INT: "int",
    LogicalType.FLOAT: "float",
    LogicalType.DATE: "date",
    LogicalType.STRING: "string",
}


def _column_name(expr: ast.Expr, fields: Optional[frozenset]) -> Optional[str]:
    if not isinstance(expr, ast.ColumnRef):
        return None
    name = expr.resolved or expr.display
    if fields is not None and name not in fields:
        return None
    return name


def _operand(expr: ast.Expr, kind: str) -> Optional[Operand]:
    if isinstance(expr, ast.ParameterExpr):
        return Operand(param=expr.name)
    if isinstance(expr, ast.Literal) and expr.value is not None:
        value = expr.value
        if kind == "string":
            value = str(value)
        elif kind == "date":
            value = int(value)
        elif not isinstance(value, (int, float, np.integer, np.floating)):
            return None
        return Operand(value=value)
    return None


def _match_comparison(expr: ast.BinaryOp, fields) -> Optional[PruningConjunct]:
    op = _COMPARISONS.get(expr.op)
    if op is None:
        return None
    column = _column_name(expr.left, fields)
    other = expr.right
    if column is None:
        column = _column_name(expr.right, fields)
        other = expr.left
        op = _FLIPPED[op]
        if column is None:
            return None
    ref = expr.left if other is expr.right else expr.right
    kind = _PRUNABLE_KINDS.get(ref.otype)
    if kind is None:
        return None
    if kind == "string" and op != "eq":
        return None
    operand = _operand(other, kind)
    if operand is None:
        return None
    return PruningConjunct(column, kind, op, (operand,))


def extract_pruning_conjuncts(condition: ast.Expr,
                              field_names: Optional[Sequence[str]] = None
                              ) -> list[PruningConjunct]:
    """Zone-map-checkable conjuncts of ``condition``.

    ``field_names`` restricts matches to columns of one scan's output schema
    (pass ``None`` to accept any column reference — used by selectivity
    estimation, which resolves columns against every scanned table).
    """
    fields = frozenset(field_names) if field_names is not None else None
    conjuncts: list[PruningConjunct] = []
    for part in split_conjuncts(condition):
        if isinstance(part, ast.BinaryOp):
            matched = _match_comparison(part, fields)
            if matched is not None:
                conjuncts.append(matched)
        elif isinstance(part, ast.Between) and not part.negated:
            column = _column_name(part.operand, fields)
            kind = _PRUNABLE_KINDS.get(part.operand.otype)
            if column is None or kind is None or kind == "string":
                continue
            low = _operand(part.low, kind)
            high = _operand(part.high, kind)
            if low is not None:
                conjuncts.append(PruningConjunct(column, kind, "ge", (low,)))
            if high is not None:
                conjuncts.append(PruningConjunct(column, kind, "le", (high,)))
        elif isinstance(part, ast.InList) and not part.negated:
            column = _column_name(part.operand, fields)
            kind = _PRUNABLE_KINDS.get(part.operand.otype)
            if column is None or kind is None:
                continue
            operands = [_operand(item, kind) for item in part.items]
            if operands and all(op is not None for op in operands):
                conjuncts.append(PruningConjunct(column, kind, "in",
                                                 tuple(operands)))
    return conjuncts


# -- block survival (python path: literals + bind-time resolved params) -------


def _op_mask(op: str, mins: np.ndarray, maxs: np.ndarray, value: Any
             ) -> np.ndarray:
    if op == "lt":
        return mins < value
    if op == "le":
        return mins <= value
    if op == "gt":
        return maxs > value
    if op == "ge":
        return maxs >= value
    # equality: the value must fall inside the block's [min, max] range
    return (mins <= value) & (maxs >= value)


def conjunct_block_mask(conjunct: PruningConjunct, stats: ColumnStatistics,
                        params: Optional[Mapping[str, Any]] = None
                        ) -> Optional[np.ndarray]:
    """(B,) survival mask for one conjunct, or ``None`` if unresolvable."""
    values = [op.resolve(params) for op in conjunct.operands]
    if any(v is None for v in values):
        return None
    mins = np.asarray(stats.block_min)
    maxs = np.asarray(stats.block_max)
    alive = stats.block_nonnull > 0   # NULL never satisfies a comparison
    if conjunct.op == "in":
        hit = np.zeros(len(mins), dtype=bool)
        for value in values:
            hit |= _op_mask("eq", mins, maxs, value)
        return alive & hit
    return alive & _op_mask(conjunct.op, mins, maxs, values[0])


def surviving_blocks(conjuncts: Sequence[PruningConjunct],
                     stats: TableStatistics,
                     params: Optional[Mapping[str, Any]] = None
                     ) -> np.ndarray:
    """(B,) bool mask of blocks that may contain matching rows.

    Conjuncts over columns without statistics, and parameterized conjuncts
    whose value is absent from ``params``, are skipped (never prune).
    """
    mask = np.ones(stats.num_blocks, dtype=bool)
    for conjunct in conjuncts:
        column_stats = stats.column(conjunct.column)
        if column_stats is None or len(column_stats.block_nonnull) != len(mask):
            continue
        contribution = conjunct_block_mask(conjunct, column_stats, params)
        if contribution is not None:
            mask &= contribution
    return mask


# -- block survival (tensor path: traced programs, params as runtime inputs) --


def block_mask_tensor(conjuncts: Sequence[PruningConjunct],
                      stats: TableStatistics,
                      param_tensors: Mapping[str, Tensor],
                      device: Device | str = "cpu") -> Optional[Tensor]:
    """Survival mask as a traced ``(B,)`` bool tensor.

    Only numeric/date conjuncts lower to tensor ops (string zone bounds are
    python objects); conjuncts that cannot lower are skipped — the mask stays
    conservative.  Zone-map bounds enter the graph as constants tied to the
    table version (any data change invalidates the plan), while parameter
    values are the program's runtime inputs, so a traced program re-decides
    block survival on every binding.
    """
    dev = parse_device(device)
    mask: Optional[Tensor] = None

    for conjunct in conjuncts:
        column_stats = stats.column(conjunct.column)
        if (column_stats is None or conjunct.kind == "string"
                or len(column_stats.block_nonnull) != stats.num_blocks):
            continue
        # int/date bounds stay int64 — epoch-nanosecond dates exceed the
        # exact-integer range of float64, and a boundary comparison that
        # rounds could prune a block that still holds a matching row.  A
        # float literal against an integer column forces the float path.
        integral = (conjunct.kind in ("int", "date")
                    and all(op.is_param or isinstance(op.value, (int, np.integer))
                            for op in conjunct.operands))
        dtype = "int64" if integral else "float64"

        def scalar(operand: Operand) -> Optional[Tensor]:
            if operand.is_param:
                tensor = param_tensors.get(operand.param)
                return None if tensor is None else ops.cast(tensor, dtype)
            return ops.tensor(operand.value, dtype=dtype, device=dev)

        np_dtype = np.int64 if integral else np.float64
        mins = ops.tensor(np.asarray(column_stats.block_min, dtype=np_dtype),
                          device=dev)
        maxs = ops.tensor(np.asarray(column_stats.block_max, dtype=np_dtype),
                          device=dev)
        alive = ops.tensor(column_stats.block_nonnull > 0, device=dev)
        values = [scalar(op) for op in conjunct.operands]
        if any(v is None for v in values):
            continue

        def compare(op: str, value: Tensor) -> Tensor:
            if op == "lt":
                return ops.lt(mins, value)
            if op == "le":
                return ops.le(mins, value)
            if op == "gt":
                return ops.gt(maxs, value)
            if op == "ge":
                return ops.ge(maxs, value)
            return ops.logical_and(ops.le(mins, value), ops.ge(maxs, value))

        if conjunct.op == "in":
            hit = compare("eq", values[0])
            for value in values[1:]:
                hit = ops.logical_or(hit, compare("eq", value))
        else:
            hit = compare(conjunct.op, values[0])
        contribution = ops.logical_and(alive, hit)
        mask = contribution if mask is None else ops.logical_and(mask, contribution)
    return mask


# -- selectivity estimation ---------------------------------------------------


def _range_fraction(stats: ColumnStatistics, op: str, value: Any) -> float:
    lo, hi = stats.min_value, stats.max_value
    try:
        lo_f, hi_f, v = float(lo), float(hi), float(value)
    except (TypeError, ValueError):
        return 1.0
    if hi_f <= lo_f:  # single-valued column: the predicate matches all or nothing
        if op == "le":
            return 1.0 if v >= lo_f else 0.0
        if op == "lt":
            return 1.0 if v > lo_f else 0.0
        if op == "ge":
            return 1.0 if v <= lo_f else 0.0
        return 1.0 if v < lo_f else 0.0
    frac = (v - lo_f) / (hi_f - lo_f)
    frac = min(1.0, max(0.0, frac))
    return frac if op in ("lt", "le") else 1.0 - frac


def conjunct_selectivity(conjunct: PruningConjunct,
                         stats: Optional[ColumnStatistics]) -> float:
    """Estimated match fraction for one conjunct (1.0 when unknown)."""
    if stats is None:
        return 1.0
    if conjunct.has_params:
        return PARAM_SELECTIVITY
    if conjunct.op == "eq":
        return 1.0 / max(1, stats.ndv)
    if conjunct.op == "in":
        return min(1.0, len(conjunct.operands) / max(1, stats.ndv))
    return _range_fraction(stats, conjunct.op,
                           conjunct.operands[0].value)


def estimate_selectivity(condition: ast.Expr,
                         column_stats: Mapping[str, ColumnStatistics]) -> float:
    """Combined selectivity estimate of a filter predicate.

    ``column_stats`` maps *base* (unqualified) column names to their
    statistics; conjuncts over unknown columns contribute 1.0.  Conjunct
    fractions multiply under the usual independence assumption, floored at
    :data:`MIN_SELECTIVITY`.
    """
    selectivity = 1.0
    for conjunct in extract_pruning_conjuncts(condition, field_names=None):
        base = conjunct.column.split(".", 1)[1] if "." in conjunct.column \
            else conjunct.column
        selectivity *= conjunct_selectivity(conjunct, column_stats.get(base))
    return max(MIN_SELECTIVITY, min(1.0, selectivity))
