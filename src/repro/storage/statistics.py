"""Table statistics: zone maps, NDV estimates, row counts.

Statistics are computed from the ingestion DataFrame when a table is
registered (see ``repro.frontend.catalog.Catalog.register``) and are
invalidated with the table version: re-registering a table recomputes them, so
a cached plan can never consult zone maps describing old data (the plan cache
already revalidates plans against the table version).

Zone-map blocks are aligned to the morsel grid (:data:`BLOCK_ROWS` equals
``repro.core.columnar.DEFAULT_MORSEL_ROWS``): a pruned block is exactly the
row range a morsel-driven scan would otherwise dispatch to a worker lane.

NULL accounting follows SQL comparison semantics end to end: a float NaN and a
``None`` string count as NULL, zone-map min/max are computed over the non-NULL
values only, and a block whose non-null count is zero can be dropped by *any*
comparison predicate (NULL never compares true).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.core.columnar import DEFAULT_MORSEL_ROWS, encode_dates, morsel_bounds

#: Rows per zone-map block, aligned with the morsel grid so "skip this block"
#: and "skip this morsel dispatch" are the same decision.
BLOCK_ROWS = DEFAULT_MORSEL_ROWS


@dataclasses.dataclass
class ColumnStatistics:
    """Zone map + table-level statistics for one column."""

    name: str
    kind: str                      # int | float | bool | date | string
    null_count: int
    ndv: int                       # distinct non-NULL values
    min_value: object              # None when every value is NULL
    max_value: object
    block_min: np.ndarray          # (B,) per-block minima (object for strings)
    block_max: np.ndarray
    block_nonnull: np.ndarray      # (B,) int64 non-NULL counts

    @property
    def comparable(self) -> bool:
        """Whether range predicates over this column can use the zone map."""
        return self.min_value is not None


@dataclasses.dataclass
class TableStatistics:
    """Statistics for one registered table, at one table version."""

    row_count: int
    block_rows: int
    columns: dict[str, ColumnStatistics]

    @property
    def num_blocks(self) -> int:
        return len(morsel_bounds(self.row_count, self.block_rows))

    def column(self, name: str) -> Optional[ColumnStatistics]:
        base = name.split(".", 1)[1] if "." in name else name
        return self.columns.get(base)


def _null_mask(array: np.ndarray, kind: str) -> np.ndarray:
    if kind == "float":
        return np.isnan(array)
    if kind == "string":
        return np.array([v is None for v in array], dtype=bool)
    return np.zeros(len(array), dtype=bool)


def _column_statistics(name: str, array: np.ndarray, kind: str,
                       block_rows: int) -> ColumnStatistics:
    if kind == "date":
        values: np.ndarray = encode_dates(array)
    elif kind == "string":
        values = np.array(["" if v is None else str(v) for v in array],
                          dtype=object)
    else:
        values = array
    nulls = _null_mask(array, kind)
    null_count = int(nulls.sum())
    non_null = values[~nulls]
    ndv = int(len(np.unique(non_null))) if len(non_null) else 0

    bounds = morsel_bounds(len(values), block_rows)
    object_blocks = kind == "string"
    block_min = np.empty(len(bounds), dtype=object if object_blocks else values.dtype)
    block_max = np.empty(len(bounds), dtype=object if object_blocks else values.dtype)
    block_nonnull = np.zeros(len(bounds), dtype=np.int64)
    for i, (start, length) in enumerate(bounds):
        chunk = values[start:start + length]
        chunk_nulls = nulls[start:start + length]
        live = chunk[~chunk_nulls]
        block_nonnull[i] = len(live)
        if len(live):
            block_min[i] = live.min()
            block_max[i] = live.max()
        else:
            # Placeholder bounds for an all-NULL block; ``block_nonnull == 0``
            # is what pruning consults, these are never compared.
            block_min[i] = values.dtype.type() if not object_blocks else ""
            block_max[i] = block_min[i]
    return ColumnStatistics(
        name=name, kind=kind, null_count=null_count, ndv=ndv,
        min_value=(non_null.min() if len(non_null) else None),
        max_value=(non_null.max() if len(non_null) else None),
        block_min=block_min, block_max=block_max, block_nonnull=block_nonnull,
    )


def zone_discrimination(stats: ColumnStatistics) -> float:
    """How discriminative a column's zone map is, in ``[0, 1]``.

    The mean block span divided by the column's global span: ~0 for data
    clustered on this column (each block covers a narrow value range — range
    predicates can skip most blocks), ~1 for unclustered data (every block
    spans the whole domain — no binding can ever prune, so compiling a
    zone-map check into a traced program would be pure overhead).  Returns 1.0
    when the measure is undefined (strings, all-NULL columns).
    """
    if stats.kind == "string" or stats.min_value is None:
        return 1.0
    try:
        span = float(stats.max_value) - float(stats.min_value)
    except (TypeError, ValueError):
        return 1.0
    if span <= 0:
        return 0.0
    live = stats.block_nonnull > 0
    if not live.any():
        return 0.0
    block_spans = (stats.block_max[live].astype(np.float64)
                   - stats.block_min[live].astype(np.float64))
    return float(min(1.0, max(0.0, block_spans.mean() / span)))


def compute_table_statistics(frame, block_rows: int = BLOCK_ROWS
                             ) -> TableStatistics:
    """Collect row count, NDV and zone maps for every column of ``frame``."""
    kinds = frame.dtypes()
    columns = {
        name: _column_statistics(name, frame[name], kind, block_rows)
        for name, kind in kinds.items()
    }
    return TableStatistics(row_count=frame.num_rows, block_rows=block_rows,
                           columns=columns)
