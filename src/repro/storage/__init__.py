"""Compressed columnar storage: encodings, statistics, and scan pruning.

This package is the storage layer underneath the paper's columnar tensor
representation (``repro.core.columnar``).  It owns three concerns:

* :mod:`repro.storage.encodings` — compressed column encodings.  String
  columns can be **dictionary-encoded** (``(n,)`` int32 code tensors plus a
  sorted ``(k × m)`` dictionary tensor, replacing the raw ``(n × m)``
  code-point matrix on the hot path); sorted/low-cardinality numeric and date
  columns can be **run-length-encoded** (run values + run lengths, with a
  constant column as the one-run special case).  Decoding is itself a tensor
  op (``take`` / ``repeat``), so it lazily composes with tracing, devices and
  the simulated cost models, and any operator that cannot handle an encoded
  column transparently falls back to the decoded form.

* :mod:`repro.storage.statistics` — per-table statistics collected when a
  table is registered: row counts, per-column NDV estimates and null counts,
  and **zone maps** (min / max / non-null count per fixed-size block of rows,
  with blocks aligned to the morsel grid of the parallel operators).

* :mod:`repro.storage.pruning` — compiling conjunctive range / equality / IN
  predicates (including parameterized ones, resolved at bind time) into
  zone-map checks that let scans drop whole blocks before any kernel runs,
  plus the selectivity estimates the planner feeds into its
  parallelism-threshold decisions.
"""

from repro.storage.encodings import (
    DictionaryEncoding,
    RunLengthEncoding,
    dictionary_encode,
    encode_column,
    encode_table,
    run_length_encode,
)
from repro.storage.pruning import (
    PruningConjunct,
    block_mask_tensor,
    estimate_selectivity,
    extract_pruning_conjuncts,
    surviving_blocks,
)
from repro.storage.statistics import (
    BLOCK_ROWS,
    ColumnStatistics,
    TableStatistics,
    compute_table_statistics,
)

__all__ = [
    "BLOCK_ROWS",
    "ColumnStatistics",
    "DictionaryEncoding",
    "PruningConjunct",
    "RunLengthEncoding",
    "TableStatistics",
    "block_mask_tensor",
    "compute_table_statistics",
    "dictionary_encode",
    "encode_column",
    "encode_table",
    "estimate_selectivity",
    "extract_pruning_conjuncts",
    "run_length_encode",
    "surviving_blocks",
]
