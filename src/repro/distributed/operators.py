"""Distributed operators: per-shard pipelines with explicit exchanges.

These operators are the multi-device analogue of the morsel-parallel family
(:mod:`repro.core.operators.parallel`).  Results stay exact — every shard's
work runs with real kernels, one shard after another inside a
:func:`~repro.tensor.profiler.shard_scope` annotation — and only *time* is
simulated: the device cost models replay the shard annotations into
concurrent per-device timelines and charge every ``shard_exchange`` /
``shard_broadcast`` / ``shard_gather`` op as an interconnect transfer with
its real payload bytes.

Data movement is explicit, one identity op per column tensor (plus one per
validity mask), so the bytes a cost model charges are exactly the bytes the
plan moves:

* **shuffle** — each source shard re-hashes its join-key values with tensor
  ops and sends every destination its fragment (``shard_exchange``); equal
  keys land on the same destination on both sides, so per-destination local
  joins are globally correct;
* **broadcast** — a small unsharded build side is replicated to every device
  (``shard_broadcast``), valid for any join kind when the *probe* side is the
  sharded one (and for inner joins from either side);
* **gather** — per-shard results return to the host (``shard_gather``) and
  concatenate in shard order, so distributed plans are deterministic.

The query-time partition hash is computed from raw key *values* (not the
load-time placement), entirely inside the traced op vocabulary — no
``.numpy()`` escapes — so hash- and range-sharded inputs run the same plans
and produce identical results.
"""

from __future__ import annotations

from typing import Optional

from repro.core.columnar import LogicalType, TensorColumn, TensorTable
from repro.core.expressions import (
    ExprValue,
    as_mask,
    decode_value,
    evaluate,
    to_column,
)
from repro.core.operators.base import ExecutionContext, TensorOperator
from repro.core.operators.join import HashJoinOperator
from repro.core.operators.parallel import (
    ParallelHashAggregateOperator,
    concat_morsels,
)
from repro.core.operators.scan import ScanOperator
from repro.distributed.sharding import (
    HASH_MIX,
    STRING_HASH_BASE,
    ShardBatch,
    ShardedTable,
    string_hash_weights,
)
from repro.errors import ExecutionError
from repro.frontend import ast
from repro.frontend.logical import Field
from repro.tensor import Tensor, current_profiler, ops, shard_scope


def run_per_shard(devices: int, fn, label: str = "") -> list:
    """Run ``fn(shard)`` for every shard, inside its shard annotation.

    Shards execute one after another (deterministic, trace- and
    profile-friendly, like the morsel worker pool); the cost models turn the
    annotations back into concurrent per-device timelines.
    """
    profiler = current_profiler()
    results = []
    for shard in range(devices):
        with shard_scope(shard):
            if profiler is not None and label:
                with profiler.scope(f"{label}@d{shard}"):
                    results.append(fn(shard))
            else:
                results.append(fn(shard))
    return results


# -- explicit data movement ---------------------------------------------------


def _move_column(column: TensorColumn, move) -> TensorColumn:
    """Thread a column's per-row tensors through an exchange identity op.

    Auxiliary encoding tensors (dictionaries) are *not* threaded: they were
    replicated to every device at load time, so only codes ever cross the
    interconnect — which is precisely the payload the cost models should see.
    """
    valid = move(column.valid) if column.valid is not None else None
    return TensorColumn(move(column.tensor), column.ltype, valid,
                        column.encoding)


def exchange_table(table: TensorTable, src: int, dst: int) -> TensorTable:
    """Move a fragment from shard ``src`` to shard ``dst`` (peer link)."""
    return TensorTable({
        name: _move_column(column, lambda t: ops.shard_exchange(t, src, dst))
        for name, column in table.columns()
    })


def broadcast_table(table: TensorTable, dst: int) -> TensorTable:
    """Replicate an unsharded table onto shard ``dst``."""
    return TensorTable({
        name: _move_column(column, lambda t: ops.shard_broadcast(t, dst))
        for name, column in table.columns()
    })


def gather_table(table: TensorTable, src: int) -> TensorTable:
    """Return shard ``src``'s result to the host."""
    return TensorTable({
        name: _move_column(column, lambda t: ops.shard_gather(t, src))
        for name, column in table.columns()
    })


# -- query-time partition hash ------------------------------------------------


def _hash_expr_value(value: ExprValue) -> Tensor:
    """A ``(n,)`` int64 hash of raw key values, built from tensor ops only.

    Integer/date/bool keys cast to int64; floats truncate (equal values stay
    equal, which is all partitioning needs).  Strings hash their code-point
    matrix with pad-invariant polynomial weights via one int64 ``matmul``.
    NULL keys hash to 0 — they all land on one destination, where the join
    machinery refuses to match them exactly as it does on a single device.
    """
    value = decode_value(value)
    data = value.tensor
    if value.ltype == LogicalType.STRING:
        width = data.shape[-1] if data.ndim == 2 else 1
        weights = ops.tensor(string_hash_weights(width), dtype="int64",
                             device=data.device)
        hashed = ops.matmul(ops.cast(data, "int64"), weights)
    else:
        hashed = ops.cast(data, "int64")
    if value.valid is not None:
        hashed = ops.where(value.valid, hashed, 0)
    return hashed


def partition_ids(table: TensorTable, keys: list[ast.Expr],
                  ctx: ExecutionContext, devices: int) -> Tensor:
    """Destination shard per row: multi-key polynomial combine, multiplicative
    mix, then the *high* bits modulo ``devices`` (low bits alone would leave
    power-of-two device counts keyed by the raw low bits)."""
    hashed = None
    for key in keys:
        part = _hash_expr_value(evaluate(key, table, ctx.eval_ctx))
        hashed = part if hashed is None else ops.add(
            ops.mul(hashed, STRING_HASH_BASE), part)
    if hashed is None:
        raise ExecutionError("shuffle requires at least one join key")
    return ops.mod(ops.floordiv(ops.mul(hashed, HASH_MIX), 1 << 32), devices)


# -- operators ----------------------------------------------------------------


class DistributedScanOperator(ScanOperator):
    """Leaf of a distributed plan: emit the pre-sharded input, per device.

    Input preparation (the executor/session) shards the converted table
    according to ``devices``/``shard_mode`` — by the time the plan runs, the
    placement is data layout, and the scan just selects each shard's columns
    inside that shard's annotation.  Zone-map pruning does not apply: the
    statistics describe the unsharded table, and a sharded scan's parallelism
    already comes from the placement.
    """

    name = "DistributedScan"

    traced_dynamic_pruning = False

    def __init__(self, table: str, alias: str, fields: list[Field],
                 devices: int, shard_mode: str = "hash"):
        super().__init__(table, alias, fields)
        self.devices = devices
        self.shard_mode = shard_mode

    def describe(self) -> str:
        return (f"DistributedScan({self.table}, devices={self.devices}, "
                f"{self.shard_mode})")

    def _execute(self, ctx: ExecutionContext) -> ShardBatch:
        sharded = ctx.input_table(self.alias)
        if not isinstance(sharded, ShardedTable):
            raise ExecutionError(
                f"scan {self.alias!r} expected a sharded input table; input "
                "preparation must shard tables read by a DistributedScan")
        if sharded.spec.devices != self.devices:
            raise ExecutionError(
                f"scan {self.alias!r} planned for {self.devices} devices but "
                f"the input is sharded {sharded.spec.devices} ways")
        names = [field.name for field in self.fields]

        def scan_shard(shard: int) -> TensorTable:
            table = sharded.shards[shard]
            missing = [name for name in names if name not in table]
            if missing:
                raise ExecutionError(
                    f"input table for {self.alias!r} is missing columns "
                    f"{missing}")
            return self._materialize_rle(table.select(names))

        return ShardBatch(run_per_shard(self.devices, scan_shard,
                                        self.describe()))


class DistributedFilterOperator(TensorOperator):
    """Filter evaluated independently on every shard (no data movement)."""

    name = "DistributedFilter"

    def __init__(self, child: TensorOperator, condition: ast.Expr,
                 devices: int):
        super().__init__([child])
        self.condition = condition
        self.devices = devices

    def describe(self) -> str:
        return f"DistributedFilter(devices={self.devices})"

    def _execute(self, ctx: ExecutionContext) -> ShardBatch:
        batch = self.children[0].execute(ctx)

        def filter_shard(shard: int) -> TensorTable:
            sub = batch.shards[shard]
            value = evaluate(self.condition, sub, ctx.eval_ctx)
            return sub.mask(as_mask(value, sub.num_rows, like=sub.anchor))

        return ShardBatch(run_per_shard(self.devices, filter_shard,
                                        self.describe()))


class DistributedProjectOperator(TensorOperator):
    """Projection computed independently on every shard (no data movement)."""

    name = "DistributedProject"

    def __init__(self, child: TensorOperator, exprs: list[ast.Expr],
                 names: list[str], types: list[LogicalType], devices: int):
        super().__init__([child])
        self.exprs = exprs
        self.names = names
        self.types = types
        self.devices = devices

    def describe(self) -> str:
        return f"DistributedProject({len(self.exprs)} cols, devices={self.devices})"

    def _execute(self, ctx: ExecutionContext) -> ShardBatch:
        batch = self.children[0].execute(ctx)

        def project_shard(shard: int) -> TensorTable:
            sub = batch.shards[shard]
            columns = {}
            for expr, name in zip(self.exprs, self.names):
                value = evaluate(expr, sub, ctx.eval_ctx)
                columns[name] = to_column(value, sub.num_rows, like=sub.anchor)
            return TensorTable(columns)

        return ShardBatch(run_per_shard(self.devices, project_shard,
                                        self.describe()))


class DistributedRenameOperator(TensorOperator):
    """Positional rename applied per shard (pure metadata, no kernels).

    Derived-table aliases (``FROM (SELECT ...) f``) lower to a RENAME node;
    keeping it inside the sharded region lets subqueries feed shuffle joins
    without a gather in between.
    """

    name = "DistributedRename"

    def __init__(self, child: TensorOperator, output_fields: list[Field],
                 devices: int):
        super().__init__([child])
        self.output_fields = output_fields
        self.devices = devices

    def describe(self) -> str:
        return f"DistributedRename(devices={self.devices})"

    def _execute(self, ctx: ExecutionContext) -> ShardBatch:
        batch = self.children[0].execute(ctx)

        def rename_shard(shard: int) -> TensorTable:
            sub = batch.shards[shard]
            names = sub.column_names
            if len(names) != len(self.output_fields):
                raise ExecutionError(
                    "rename arity mismatch: "
                    f"{len(names)} input columns vs "
                    f"{len(self.output_fields)} output fields")
            return TensorTable({
                field.name: sub.column(name)
                for name, field in zip(names, self.output_fields)
            })

        return ShardBatch(run_per_shard(self.devices, rename_shard))


class ShuffleJoinOperator(HashJoinOperator):
    """Equi-join of two sharded inputs via hash co-partitioning.

    Phase 1 (per *source* shard): evaluate the join keys, hash them into a
    destination id per row, cut one fragment per destination with a boolean
    mask, and send every non-local fragment through ``shard_exchange``.
    Phase 2 (per *destination* shard): concatenate the arriving fragments and
    run the ordinary serial join tail (densify → match → finish) locally.

    Correct for every supported kind: the left side is partitioned by key, so
    each left row reaches exactly one destination, and equal keys from both
    sides meet there — semi/anti/left-outer decisions are local.
    """

    name = "ShuffleJoin"

    def __init__(self, left: TensorOperator, right: TensorOperator, kind: str,
                 left_keys: list[ast.Expr], right_keys: list[ast.Expr],
                 residual: Optional[ast.Expr] = None, *, devices: int):
        super().__init__(left, right, kind, left_keys, right_keys, residual)
        self.devices = devices

    def describe(self) -> str:
        return f"ShuffleJoin[{self.kind}](devices={self.devices})"

    def _fragments(self, table: TensorTable, keys: list[ast.Expr],
                   ctx: ExecutionContext, src: int) -> list[TensorTable]:
        part = partition_ids(table, keys, ctx, self.devices)
        fragments = []
        for dst in range(self.devices):
            fragment = table.mask(ops.eq(part, dst))
            fragments.append(fragment if dst == src
                             else exchange_table(fragment, src, dst))
        return fragments

    def _execute(self, ctx: ExecutionContext) -> ShardBatch:
        left_batch = self.children[0].execute(ctx)
        right_batch = self.children[1].execute(ctx)

        def scatter(shard: int):
            return (self._fragments(left_batch.shards[shard], self.left_keys,
                                    ctx, shard),
                    self._fragments(right_batch.shards[shard], self.right_keys,
                                    ctx, shard))

        scattered = run_per_shard(self.devices, scatter,
                                  f"{self.describe()}:shuffle")

        def join_shard(shard: int) -> TensorTable:
            left_local = concat_morsels(
                [left_frags[shard] for left_frags, _ in scattered])
            right_local = concat_morsels(
                [right_frags[shard] for _, right_frags in scattered])
            left_ids, right_ids = self._key_ids(left_local, right_local, ctx)
            need_pairs = not (self.kind in ("semi", "anti")
                              and self.residual is None)
            counts, pairs = HashJoinOperator._match_pairs(
                self, left_ids, right_ids, need_pairs)
            return self._finish(left_local, right_local, counts, pairs, ctx)

        return ShardBatch(run_per_shard(self.devices, join_shard,
                                        self.describe()))


class BroadcastJoinOperator(HashJoinOperator):
    """Equi-join where one small unsharded side is replicated to every shard.

    ``broadcast="right"`` (sharded probe side) is valid for every join kind:
    each left row lives on exactly one shard and sees the complete right
    side there.  ``broadcast="left"`` is inner-only — a broadcast left row
    would match (or survive) once per shard under any other kind.
    """

    name = "BroadcastJoin"

    def __init__(self, left: TensorOperator, right: TensorOperator, kind: str,
                 left_keys: list[ast.Expr], right_keys: list[ast.Expr],
                 residual: Optional[ast.Expr] = None, *, devices: int,
                 broadcast: str = "right"):
        super().__init__(left, right, kind, left_keys, right_keys, residual)
        if broadcast not in ("left", "right"):
            raise ExecutionError(f"unknown broadcast side {broadcast!r}")
        if broadcast == "left" and kind != "inner":
            raise ExecutionError(
                "broadcasting the left side is only sound for inner joins")
        self.devices = devices
        self.broadcast = broadcast

    def describe(self) -> str:
        return (f"BroadcastJoin[{self.kind}]"
                f"(devices={self.devices}, broadcast={self.broadcast})")

    def _local_join(self, left_table: TensorTable, right_table: TensorTable,
                    ctx: ExecutionContext) -> TensorTable:
        left_ids, right_ids = self._key_ids(left_table, right_table, ctx)
        need_pairs = not (self.kind in ("semi", "anti")
                          and self.residual is None)
        counts, pairs = HashJoinOperator._match_pairs(
            self, left_ids, right_ids, need_pairs)
        return self._finish(left_table, right_table, counts, pairs, ctx)

    def _execute(self, ctx: ExecutionContext) -> ShardBatch:
        if self.broadcast == "right":
            batch = self.children[0].execute(ctx)
            build = self.children[1].execute(ctx)

            def join_shard(shard: int) -> TensorTable:
                return self._local_join(batch.shards[shard],
                                        broadcast_table(build, shard), ctx)
        else:
            build = self.children[0].execute(ctx)
            batch = self.children[1].execute(ctx)

            def join_shard(shard: int) -> TensorTable:
                return self._local_join(broadcast_table(build, shard),
                                        batch.shards[shard], ctx)

        return ShardBatch(run_per_shard(self.devices, join_shard,
                                        self.describe()))


class ShardedAggregateOperator(ParallelHashAggregateOperator):
    """Partial-then-merge aggregation across shards.

    Each shard computes the same partial-aggregate table the morsel-parallel
    operator computes per morsel (a few rows per group); only those partials
    cross the interconnect (``shard_gather``) — the classic reason two-phase
    aggregation is the backbone of every distributed engine.  The merge runs
    on the host, so the operator's output is an ordinary unsharded table.
    """

    name = "ShardedAggregate"

    def __init__(self, child, group_exprs, group_names, group_types,
                 aggregates, *, devices: int):
        super().__init__(child, group_exprs, group_names, group_types,
                         aggregates, parallelism=1)
        self.devices = devices

    def describe(self) -> str:
        return (f"ShardedAggregate(groups={len(self.group_exprs)}, "
                f"devices={self.devices})")

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        batch = self.children[0].execute(ctx)
        partials = run_per_shard(
            self.devices,
            lambda shard: self._partial_table(batch.shards[shard], ctx),
            self.describe())
        gathered = [gather_table(partial, shard)
                    for shard, partial in enumerate(partials)]
        return self._merge_partials(concat_morsels(gathered), ctx)


class GatherOperator(TensorOperator):
    """Collect per-shard results back to the host, in shard order."""

    name = "Gather"

    def __init__(self, child: TensorOperator, devices: int):
        super().__init__([child])
        self.devices = devices

    def describe(self) -> str:
        return f"Gather(devices={self.devices})"

    def _execute(self, ctx: ExecutionContext) -> TensorTable:
        batch = self.children[0].execute(ctx)
        return concat_morsels([gather_table(table, shard)
                               for shard, table in enumerate(batch.shards)])
