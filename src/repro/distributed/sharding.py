"""Sharded tables: spreading a :class:`TensorTable` across simulated devices.

A :class:`ShardedTable` is the multi-device form of a converted input table:
one :class:`~repro.core.columnar.TensorTable` per simulated device, plus the
:class:`ShardSpec` describing how rows were placed.  Sharding happens at
load time (input preparation), outside any trace or profiler — the placement
itself is data layout, not query work — so a traced program simply receives
each shard's columns as separate named inputs.

Two placement strategies, mirroring the options on
:class:`~repro.core.options.ExecutionOptions`:

* ``hash`` — rows are spread by a multiplicative hash of the table's first
  scanned column, so equal keys land on the same device (the layout a
  distributed engine keeps its fact tables in);
* ``range`` — contiguous row ranges, one zero-copy slice per device (the
  layout of time-partitioned append-only data).

Query-time repartitioning (the shuffle) never relies on the load-time
placement: the exchange operators re-hash by the *join* keys with tensor ops
(see :mod:`repro.distributed.operators`), so both placements produce
identical results for every plan.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.core.columnar import TensorTable
from repro.core.tuning import DEFAULT_TUNING
from repro.errors import ExecutionError
from repro.tensor import ops

#: Minimum base-table cardinality for the planner to shard its scan — below
#: this, per-shard kernel overhead and the final gather outweigh any
#: multi-device parallelism (the same reasoning as the morsel threshold).
#: Canonical home: :class:`repro.core.tuning.Tuning`; re-exported here for
#: existing importers.
SHARD_MIN_ROWS = DEFAULT_TUNING.shard_min_rows

#: 64-bit multiplicative-hash constant (2^64 / golden ratio), wrapped to a
#: signed int64 so numpy's wrapping multiply reproduces the unsigned mix.
HASH_MIX = 0x9E3779B97F4A7C15 - (1 << 64)

#: Polynomial base for hashing string code-point matrices column by column.
STRING_HASH_BASE = 1000003


def _wrap64(value: int) -> int:
    """A python int reduced to the signed-int64 value numpy would wrap it to."""
    value &= (1 << 64) - 1
    return value - (1 << 64) if value >= (1 << 63) else value


def string_hash_weights(width: int) -> list[int]:
    """Per-character-position polynomial weights, pre-wrapped to int64.

    Position ``j`` weighs ``STRING_HASH_BASE ** j (mod 2^64)``; padding
    code points are 0, so equal strings stored at different widths hash
    equal (pad-invariance is what lets the two sides of a join hash their
    keys independently).
    """
    return [_wrap64(pow(STRING_HASH_BASE, j, 1 << 64)) for j in range(max(width, 1))]


@dataclasses.dataclass(frozen=True)
class ShardSpec:
    """How a table's rows are placed across simulated devices."""

    mode: str
    devices: int

    def __post_init__(self) -> None:
        if self.mode not in ("hash", "range"):
            raise ExecutionError(f"unknown shard mode {self.mode!r}")
        if self.devices < 1:
            raise ExecutionError("shard spec needs devices >= 1")


class ShardedTable:
    """One :class:`TensorTable` per simulated device, plus the placement spec.

    Quacks like a TensorTable just enough for the executor's input plumbing
    (``to``/``select``/``__contains__``); per-row operations live on the
    individual shards, which the distributed operators address directly.
    """

    def __init__(self, shards: list[TensorTable], spec: ShardSpec):
        if len(shards) != spec.devices:
            raise ExecutionError(
                f"shard spec expects {spec.devices} shards, got {len(shards)}")
        self.shards = list(shards)
        self.spec = spec

    @property
    def num_rows(self) -> int:
        return sum(shard.num_rows for shard in self.shards)

    @property
    def column_names(self) -> list[str]:
        return self.shards[0].column_names

    @property
    def device(self):
        return self.shards[0].device

    def __contains__(self, name: str) -> bool:
        return name in self.shards[0]

    def select(self, names) -> "ShardedTable":
        return ShardedTable([shard.select(names) for shard in self.shards],
                            self.spec)

    def to(self, device) -> "ShardedTable":
        return ShardedTable([shard.to(device) for shard in self.shards],
                            self.spec)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        rows = ", ".join(str(shard.num_rows) for shard in self.shards)
        return f"ShardedTable({self.spec.mode}, rows=[{rows}])"


class ShardBatch:
    """Per-shard intermediate results flowing between distributed operators.

    The distributed operators produce one :class:`TensorTable` per device and
    hand the list to their parent; a :class:`GatherOperator` (or a merging
    aggregate) turns the batch back into a single host table.
    """

    def __init__(self, shards: list[TensorTable]):
        self.shards = list(shards)

    @property
    def num_rows(self) -> int:
        return sum(shard.num_rows for shard in self.shards)


def _hash_rows(table: TensorTable, key_column: str) -> np.ndarray:
    """Load-time row hash (numpy-side; no trace or profile is active here)."""
    column = table.column(key_column).decoded()
    data = column.tensor.numpy()
    if data.ndim == 2:  # string code-point matrix → pad-invariant polynomial
        weights = np.array(string_hash_weights(data.shape[1] or 1),
                           dtype=np.int64)
        if data.shape[1] == 0:
            hashed = np.zeros(data.shape[0], dtype=np.int64)
        else:
            hashed = (data.astype(np.int64) * weights[None, :]).sum(
                axis=1, dtype=np.int64)
    else:
        hashed = data.astype(np.int64)
    if column.valid is not None:
        # NULL keys all land on shard 0 — like the tensor-side partition
        # hash, which never lets NULLs match anything anyway.
        hashed = np.where(column.valid.numpy(), hashed, 0)
    return hashed


def shard_bounds(num_rows: int, devices: int) -> list[tuple[int, int]]:
    """Contiguous (start, length) ranges splitting ``num_rows`` evenly."""
    base, extra = divmod(num_rows, devices)
    bounds = []
    start = 0
    for index in range(devices):
        length = base + (1 if index < extra else 0)
        bounds.append((start, length))
        start += length
    return bounds


def shard_table(table: TensorTable, devices: int, mode: str = "hash",
                key_column: str | None = None) -> ShardedTable:
    """Place a converted table's rows across ``devices`` simulated devices.

    ``hash`` spreads rows by a multiplicative hash of ``key_column`` (default:
    the table's first column); ``range`` cuts contiguous zero-copy slices.
    Dictionary-encoded columns keep their dictionary *shared* across shards —
    the dictionary is replicated to every device at load time, so query-time
    exchanges only ever move the codes.
    """
    spec = ShardSpec(mode, devices)
    if devices == 1:
        return ShardedTable([table], spec)
    if mode == "range":
        shards = [table.slice(start, length)
                  for start, length in shard_bounds(table.num_rows, devices)]
        return ShardedTable(shards, spec)
    key = key_column or table.column_names[0]
    hashed = _hash_rows(table, key)
    # Multiplicative mix, then take high bits: ``hash * K mod N`` alone would
    # leave the low bits of the key untouched for power-of-two device counts.
    mixed = (hashed * np.int64(HASH_MIX)) >> np.int64(32)
    assignment = np.mod(mixed, devices)
    shards = [table.mask(ops.tensor(assignment == index))
              for index in range(devices)]
    return ShardedTable(shards, spec)
