"""``repro.distributed`` — multi-device (simulated) distributed execution.

Tables shard across N simulated GPUs at load time
(:mod:`repro.distributed.sharding`); plans execute per-shard with explicit
exchange operators (:mod:`repro.distributed.operators`); the backend cost
models replay the shard annotations into concurrent per-device timelines and
charge every exchange as an interconnect transfer.  Enabled with
``ExecutionOptions(devices=N, shard="hash"|"range")``.
"""

from repro.distributed.operators import (
    BroadcastJoinOperator,
    DistributedFilterOperator,
    DistributedProjectOperator,
    DistributedRenameOperator,
    DistributedScanOperator,
    GatherOperator,
    ShardedAggregateOperator,
    ShuffleJoinOperator,
    broadcast_table,
    exchange_table,
    gather_table,
    partition_ids,
    run_per_shard,
)
from repro.distributed.sharding import (
    SHARD_MIN_ROWS,
    ShardBatch,
    ShardedTable,
    ShardSpec,
    shard_bounds,
    shard_table,
)

__all__ = [
    "SHARD_MIN_ROWS",
    "BroadcastJoinOperator",
    "DistributedFilterOperator",
    "DistributedProjectOperator",
    "DistributedRenameOperator",
    "DistributedScanOperator",
    "GatherOperator",
    "ShardBatch",
    "ShardSpec",
    "ShardedAggregateOperator",
    "ShardedTable",
    "ShuffleJoinOperator",
    "broadcast_table",
    "exchange_table",
    "gather_table",
    "partition_ids",
    "run_per_shard",
    "shard_bounds",
    "shard_table",
]
