"""Tensor Query Processor (TQP) reproduction.

A SQL query processor that compiles relational (and ML) operators into tensor
programs, reproducing "Share the Tensor Tea: How Databases can Leverage the
Machine Learning Ecosystem" (VLDB 2022).

Public entry points:

* :class:`repro.TQPSession` — compile and run SQL over registered dataframes
  on a chosen backend (pytorch / torchscript / onnx) and device (cpu / cuda /
  wasm, the latter two simulated).  ``session.prepare(sql)`` returns a
  :class:`repro.PreparedQuery` for compile-once/bind-many serving.
* :class:`repro.ExecutionOptions` — every compile/execute knob in one object.
* :class:`repro.serve.ServingRuntime` — multiplex many concurrent clients
  over one shared session: bounded worker pool, admission control, and
  inter-query bind batching (also exported here as
  :class:`repro.ServingRuntime`).
* :mod:`repro.tensor` — the mini tensor runtime (PyTorch stand-in).
* :mod:`repro.datasets` — TPC-H dbgen, synthetic Amazon reviews, Iris.
* :mod:`repro.ml` — from-scratch ML models and the Hummingbird-like compiler
  behind the ``PREDICT`` keyword.
* :mod:`repro.baselines` — the row-at-a-time comparator engine (Spark stand-in).
"""

from repro.core.options import ExecutionOptions
from repro.core.parameters import ParameterSpec
from repro.core.session import BoundQuery, CompiledQuery, PreparedQuery, TQPSession
from repro.dataframe import DataFrame
from repro.serve import ServingRuntime, ServingStatement, ServingTicket

__version__ = "0.2.0"

__all__ = ["BoundQuery", "CompiledQuery", "DataFrame", "ExecutionOptions",
           "ParameterSpec", "PreparedQuery", "ServingRuntime",
           "ServingStatement", "ServingTicket", "TQPSession", "__version__"]
