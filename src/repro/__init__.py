"""Tensor Query Processor (TQP) reproduction.

A SQL query processor that compiles relational (and ML) operators into tensor
programs, reproducing "Share the Tensor Tea: How Databases can Leverage the
Machine Learning Ecosystem" (VLDB 2022).

Public entry points:

* :class:`repro.TQPSession` — compile and run SQL over registered dataframes
  on a chosen backend (pytorch / torchscript / onnx) and device (cpu / cuda /
  wasm, the latter two simulated).
* :mod:`repro.tensor` — the mini tensor runtime (PyTorch stand-in).
* :mod:`repro.datasets` — TPC-H dbgen, synthetic Amazon reviews, Iris.
* :mod:`repro.ml` — from-scratch ML models and the Hummingbird-like compiler
  behind the ``PREDICT`` keyword.
* :mod:`repro.baselines` — the row-at-a-time comparator engine (Spark stand-in).
"""

from repro.core.session import CompiledQuery, TQPSession
from repro.dataframe import DataFrame

__version__ = "0.1.0"

__all__ = ["CompiledQuery", "DataFrame", "TQPSession", "__version__"]
