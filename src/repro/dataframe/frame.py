"""A minimal columnar DataFrame used for data ingestion.

The paper ingests data through Pandas / Arrow; pandas is not available in this
environment, so this module provides the small slice of that API TQP needs:
named columns backed by numpy arrays, CSV I/O (:mod:`repro.dataframe.io`),
row counts, column selection and conversion to/from Python structures.

Column kinds:

* numeric columns — any numpy integer/float/bool array,
* date columns — ``numpy.datetime64`` arrays,
* string columns — numpy object (or unicode) arrays of Python strings.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.errors import TQPError


class DataFrameError(TQPError):
    """Raised for invalid DataFrame construction or access."""


def _normalize_column(name: str, values: Any) -> np.ndarray:
    """Coerce a column to a supported numpy array."""
    if isinstance(values, np.ndarray):
        array = values
    else:
        values = list(values)
        if values and isinstance(values[0], str):
            array = np.array(values, dtype=object)
        else:
            array = np.asarray(values)
    if array.ndim != 1:
        raise DataFrameError(f"column {name!r} must be one-dimensional")
    if array.dtype.kind == "U":
        array = array.astype(object)
    if array.dtype.kind not in "ifbMO":
        raise DataFrameError(
            f"column {name!r} has unsupported dtype {array.dtype} "
            "(expected numeric, bool, datetime64, or str)"
        )
    return array


class DataFrame:
    """An ordered collection of equally sized named columns."""

    def __init__(self, data: Mapping[str, Any] | None = None):
        self._columns: dict[str, np.ndarray] = {}
        length: int | None = None
        for name, values in (data or {}).items():
            array = _normalize_column(name, values)
            if length is None:
                length = len(array)
            elif len(array) != length:
                raise DataFrameError(
                    f"column {name!r} has length {len(array)}, expected {length}"
                )
            self._columns[name] = array
        self._length = length or 0

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_records(cls, records: Sequence[Mapping[str, Any]],
                     columns: Sequence[str] | None = None) -> "DataFrame":
        """Build a DataFrame from a list of dict rows."""
        if not records:
            return cls({name: [] for name in (columns or [])})
        names = list(columns) if columns else list(records[0].keys())
        data = {name: [record[name] for record in records] for name in names}
        return cls(data)

    # -- basic protocol -------------------------------------------------------

    @property
    def columns(self) -> list[str]:
        return list(self._columns)

    @property
    def num_rows(self) -> int:
        return self._length

    def __len__(self) -> int:
        return self._length

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __getitem__(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise DataFrameError(f"no such column: {name!r}") from None

    def column(self, name: str) -> np.ndarray:
        return self[name]

    def dtypes(self) -> dict[str, str]:
        """Logical type of each column: int, float, bool, date, or string."""
        out = {}
        for name, array in self._columns.items():
            out[name] = _logical_kind(array)
        return out

    # -- transformation -------------------------------------------------------

    def select(self, names: Sequence[str]) -> "DataFrame":
        return DataFrame({name: self[name] for name in names})

    def with_column(self, name: str, values: Any) -> "DataFrame":
        """Return a copy with ``name`` added or replaced."""
        data = dict(self._columns)
        data[name] = values
        return DataFrame(data)

    def head(self, n: int = 5) -> "DataFrame":
        return DataFrame({name: array[:n] for name, array in self._columns.items()})

    def take(self, indices: Sequence[int] | np.ndarray) -> "DataFrame":
        idx = np.asarray(indices)
        return DataFrame({name: array[idx] for name, array in self._columns.items()})

    def filter(self, mask: np.ndarray) -> "DataFrame":
        mask = np.asarray(mask, dtype=bool)
        return DataFrame({name: array[mask] for name, array in self._columns.items()})

    # -- conversion -----------------------------------------------------------

    def to_dict(self) -> dict[str, list]:
        return {name: array.tolist() for name, array in self._columns.items()}

    def to_records(self) -> list[dict[str, Any]]:
        names = self.columns
        return [
            {name: self._columns[name][i] for name in names}
            for i in range(self._length)
        ]

    def rows(self) -> Iterable[tuple]:
        """Iterate rows as tuples in column order (used by the row engine)."""
        arrays = [self._columns[name] for name in self.columns]
        for i in range(self._length):
            yield tuple(array[i] for array in arrays)

    # -- comparison / display ------------------------------------------------

    def equals(self, other: "DataFrame", float_tol: float = 1e-6) -> bool:
        """Structural equality with tolerance on float columns."""
        if self.columns != other.columns or len(self) != len(other):
            return False
        for name in self.columns:
            a, b = self[name], other[name]
            if _logical_kind(a) == "float" or _logical_kind(b) == "float":
                if not np.allclose(a.astype(np.float64), b.astype(np.float64),
                                   atol=float_tol, rtol=1e-9, equal_nan=True):
                    return False
            else:
                if not np.array_equal(a, b):
                    return False
        return True

    def __repr__(self) -> str:
        preview_rows = min(self._length, 6)
        lines = [f"DataFrame({self._length} rows x {len(self._columns)} columns)"]
        if self._columns:
            lines.append(" | ".join(self.columns))
            for i in range(preview_rows):
                lines.append(" | ".join(str(self._columns[c][i]) for c in self.columns))
            if self._length > preview_rows:
                lines.append("...")
        return "\n".join(lines)


def _logical_kind(array: np.ndarray) -> str:
    if array.dtype.kind == "M":
        return "date"
    if array.dtype.kind == "b":
        return "bool"
    if array.dtype.kind == "i" or array.dtype.kind == "u":
        return "int"
    if array.dtype.kind == "f":
        return "float"
    return "string"


def concat_frames(frames: Sequence[DataFrame]) -> DataFrame:
    """Concatenate frames with identical columns vertically."""
    if not frames:
        return DataFrame()
    columns = frames[0].columns
    for frame in frames[1:]:
        if frame.columns != columns:
            raise DataFrameError("cannot concatenate frames with different columns")
    data = {
        name: np.concatenate([frame[name] for frame in frames]) for name in columns
    }
    return DataFrame(data)
