"""Minimal columnar DataFrame for data ingestion (the pandas stand-in)."""

from repro.dataframe.frame import DataFrame, DataFrameError, concat_frames
from repro.dataframe.io import read_csv, write_csv

__all__ = ["DataFrame", "DataFrameError", "concat_frames", "read_csv", "write_csv"]
