"""CSV reading/writing for the ingestion DataFrame.

Supports the pipe-delimited files produced by TPC-H ``dbgen`` as well as plain
comma-separated files, with simple type inference (int, float, date, string).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.dataframe.frame import DataFrame


def _infer_column(values: list[str]) -> np.ndarray:
    """Infer a column type from its string values."""
    stripped = [v.strip() for v in values]

    def try_parse(cast):
        out = []
        for v in stripped:
            out.append(cast(v))
        return out

    try:
        return np.asarray(try_parse(int), dtype=np.int64)
    except ValueError:
        pass
    try:
        return np.asarray(try_parse(float), dtype=np.float64)
    except ValueError:
        pass
    try:
        return np.asarray(stripped, dtype="datetime64[D]")
    except ValueError:
        pass
    return np.array(stripped, dtype=object)


def read_csv(path: str | Path, delimiter: str = ",",
             columns: Sequence[str] | None = None,
             header: bool = True) -> DataFrame:
    """Read a delimited text file into a DataFrame.

    Args:
        path: file to read.
        delimiter: field delimiter ("," or "|").
        columns: column names to use when the file has no header row.
        header: whether the first row contains column names.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as f:
        reader = csv.reader(f, delimiter=delimiter)
        rows = [row for row in reader if row]
    if not rows:
        return DataFrame({name: [] for name in (columns or [])})
    if header:
        names = rows[0]
        body = rows[1:]
    else:
        if columns is None:
            names = [f"col{i}" for i in range(len(rows[0]))]
        else:
            names = list(columns)
        body = rows
    # TPC-H dbgen writes a trailing delimiter producing an empty last field.
    width = len(names)
    body = [row[:width] for row in body]
    data = {}
    for i, name in enumerate(names):
        data[name] = _infer_column([row[i] for row in body])
    return DataFrame(data)


def write_csv(frame: DataFrame, path: str | Path, delimiter: str = ",",
              header: bool = True) -> None:
    """Write a DataFrame to a delimited text file."""
    path = Path(path)
    with path.open("w", encoding="utf-8", newline="") as f:
        writer = csv.writer(f, delimiter=delimiter)
        if header:
            writer.writerow(frame.columns)
        for row in frame.rows():
            writer.writerow([_format_value(v) for v in row])


def _format_value(value) -> str:
    if isinstance(value, np.datetime64):
        return str(value.astype("datetime64[D]"))
    if isinstance(value, (float, np.floating)):
        # repr(float(...)) keeps full precision and avoids numpy-2 scalar reprs
        # such as "np.float64(1.5)".
        return repr(float(value))
    if isinstance(value, (int, np.integer)):
        return str(int(value))
    return str(value)
