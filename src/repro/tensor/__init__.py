"""``repro.tensor`` — the mini Tensor Computation Runtime (TCR).

This package plays the role PyTorch plays in the paper: a tensor type with a
functional op vocabulary, eager execution, trace capture, graph optimization,
a scripted (TorchScript-like) target, an ONNX-like portable format, and an
op-level profiler.
"""

from repro.tensor.device import CPU, CUDA, WASM, Device, parse_device
from repro.tensor.dtype import (
    ALL_DTYPES,
    DType,
    bool_,
    by_name,
    float32,
    float64,
    from_numpy,
    int32,
    int64,
    int8,
    result_type,
    uint8,
)
from repro.tensor.graph import Graph, Node, Value
from repro.tensor.interpreter import GraphInterpreter
from repro.tensor.profiler import (
    OpEvent,
    OpSummary,
    Profiler,
    current_lane,
    current_profiler,
    current_shard,
    lane_scope,
    shard_scope,
)
from repro.tensor.script import ScriptedProgram, script_trace
from repro.tensor.tensor import Tensor, as_tensor
from repro.tensor.tracing import TraceContext, current_trace, trace
from repro.tensor import onnxlike, ops, passes

__all__ = [
    "ALL_DTYPES",
    "CPU",
    "CUDA",
    "WASM",
    "Device",
    "DType",
    "Graph",
    "GraphInterpreter",
    "Node",
    "OpEvent",
    "OpSummary",
    "Profiler",
    "ScriptedProgram",
    "Tensor",
    "TraceContext",
    "Value",
    "as_tensor",
    "bool_",
    "by_name",
    "current_lane",
    "current_profiler",
    "current_shard",
    "current_trace",
    "lane_scope",
    "shard_scope",
    "float32",
    "float64",
    "from_numpy",
    "int32",
    "int64",
    "int8",
    "onnxlike",
    "ops",
    "parse_device",
    "passes",
    "result_type",
    "script_trace",
    "tensor",
    "trace",
    "uint8",
]

tensor = ops.tensor
