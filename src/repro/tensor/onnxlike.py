"""ONNX-like portable graph format.

The paper's web backend exports queries to ONNX and runs them with ONNX
Runtime Web (WASM).  This module provides the equivalent: a JSON-serializable
model format (``repro-onnx`` version 1) with initializers, nodes and attrs,
plus a loader that reconstructs an executable graph.  The WASM-simulation
backend consumes these files.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import GraphError
from repro.tensor.graph import Graph, Value

FORMAT_NAME = "repro-onnx"
FORMAT_VERSION = 1


def _encode_array(array: np.ndarray) -> dict[str, Any]:
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": array.reshape(-1).tolist(),
    }


def _decode_array(payload: dict[str, Any]) -> np.ndarray:
    array = np.array(payload["data"], dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"]))


def export_graph(graph: Graph) -> dict[str, Any]:
    """Serialize ``graph`` into a JSON-compatible model dict."""
    graph.validate()
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": [
            {"id": vid, "name": graph.values[vid].name} for vid in graph.inputs
        ],
        "outputs": list(graph.outputs),
        "initializers": {
            str(vid): _encode_array(arr) for vid, arr in graph.initializers.items()
        },
        "nodes": [
            {"op": n.op, "inputs": n.inputs, "outputs": n.outputs, "attrs": n.attrs}
            for n in graph.nodes
        ],
    }


def import_graph(model: dict[str, Any]) -> Graph:
    """Reconstruct a :class:`Graph` from a model dict produced by export_graph."""
    if model.get("format") != FORMAT_NAME:
        raise GraphError(f"not a {FORMAT_NAME} model: format={model.get('format')!r}")
    if model.get("version") != FORMAT_VERSION:
        raise GraphError(f"unsupported {FORMAT_NAME} version: {model.get('version')!r}")
    graph = Graph(model.get("name", "imported"))
    max_id = -1

    def declare(vid: int, name: str) -> None:
        nonlocal max_id
        graph.values[vid] = Value(vid, name)
        max_id = max(max_id, vid)

    for item in model["inputs"]:
        declare(item["id"], item["name"])
        graph.inputs.append(item["id"])
    for vid_text, payload in model["initializers"].items():
        vid = int(vid_text)
        declare(vid, "const")
        graph.initializers[vid] = _decode_array(payload)
    for node_payload in model["nodes"]:
        for vid in node_payload["outputs"]:
            declare(vid, "v")
        graph.nodes.append(
            _make_node(node_payload["op"], node_payload["inputs"],
                       node_payload["outputs"], node_payload.get("attrs") or {})
        )
    graph.set_outputs(model["outputs"])
    import itertools

    graph._counter = itertools.count(max_id + 1)
    graph.validate()
    return graph


def _make_node(op: str, inputs: list[int], outputs: list[int], attrs: dict):
    from repro.tensor.graph import Node

    return Node(op, list(inputs), list(outputs), dict(attrs))


def save(graph: Graph, path: str) -> None:
    """Write the serialized graph to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(export_graph(graph), f)


def load(path: str) -> Graph:
    """Load a graph previously written by :func:`save`."""
    with open(path, "r", encoding="utf-8") as f:
        return import_graph(json.load(f))


def dumps(graph: Graph) -> str:
    return json.dumps(export_graph(graph))


def loads(text: str) -> Graph:
    return import_graph(json.loads(text))
