"""ONNX-like portable graph format.

The paper's web backend exports queries to ONNX and runs them with ONNX
Runtime Web (WASM).  This module provides the equivalent: a JSON-serializable
model format (``repro-onnx`` version 1) with initializers, nodes and attrs,
plus a loader that reconstructs an executable graph.  The WASM-simulation
backend consumes these files.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from repro.errors import GraphError
from repro.tensor.graph import Graph, Value

FORMAT_NAME = "repro-onnx"
FORMAT_VERSION = 1


def _encode_array(array: np.ndarray) -> dict[str, Any]:
    return {
        "dtype": str(array.dtype),
        "shape": list(array.shape),
        "data": array.reshape(-1).tolist(),
    }


def _decode_array(payload: dict[str, Any]) -> np.ndarray:
    array = np.array(payload["data"], dtype=np.dtype(payload["dtype"]))
    return array.reshape(tuple(payload["shape"]))


def _validate_fused_node(op: str, n_inputs: int, n_outputs: int, attrs: dict) -> None:
    """Check the local-SSA invariants of a ``fused_kernel`` node.

    The fused sub-program is plain JSON (lists of steps with integer value
    slots), so it survives the portable format untouched; this check keeps a
    malformed model from failing deep inside the kernel at execution time.
    """
    steps = attrs.get("steps")
    outputs = attrs.get("outputs")
    if not isinstance(steps, list) or not steps:
        raise GraphError("fused_kernel node carries no steps")
    if not isinstance(outputs, list) or len(outputs) != n_outputs:
        raise GraphError("fused_kernel outputs do not match its node outputs")
    for j, step in enumerate(steps):
        limit = n_inputs + j  # slots defined so far: inputs + previous steps
        if not isinstance(step.get("op"), str) or step["op"] == "fused_kernel":
            raise GraphError(f"fused_kernel step {j} has an invalid op")
        step_inputs = step.get("inputs")
        if not isinstance(step_inputs, list):
            raise GraphError(f"fused_kernel step {j} is missing its inputs")
        if any(not isinstance(i, int) or not 0 <= i < limit
               for i in step_inputs):
            raise GraphError(f"fused_kernel step {j} reads an undefined slot")
    n_slots = n_inputs + len(steps)
    if any(not isinstance(i, int) or not 0 <= i < n_slots for i in outputs):
        raise GraphError("fused_kernel output reads an undefined slot")


def _validate_fused_nodes(graph: Graph) -> None:
    for node in graph.nodes:
        if node.op == "fused_kernel":
            _validate_fused_node(node.op, len(node.inputs), len(node.outputs),
                                 node.attrs)


def export_ir(graph: Graph, encode_initializers: bool = True) -> dict[str, Any]:
    """Validate ``graph`` and lower it into the portable model structure.

    This is the stable IR both the serialized format and the codegen executor
    (:mod:`repro.tensor.codegen`) consume.  With ``encode_initializers=False``
    the initializer payloads stay raw numpy arrays (keyed by int value id) —
    the in-process consumers avoid the tolist/array round-trip that only the
    on-disk format needs, but see the exact same node/attr structure the JSON
    file would carry.
    """
    graph.validate()
    _validate_fused_nodes(graph)
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": graph.name,
        "inputs": [
            {"id": vid, "name": graph.values[vid].name} for vid in graph.inputs
        ],
        "outputs": list(graph.outputs),
        "initializers": (
            {str(vid): _encode_array(arr) for vid, arr in graph.initializers.items()}
            if encode_initializers else dict(graph.initializers)
        ),
        "nodes": [
            {"op": n.op, "inputs": n.inputs, "outputs": n.outputs, "attrs": n.attrs}
            for n in graph.nodes
        ],
    }


def export_graph(graph: Graph) -> dict[str, Any]:
    """Serialize ``graph`` into a JSON-compatible model dict."""
    return export_ir(graph, encode_initializers=True)


def import_graph(model: dict[str, Any]) -> Graph:
    """Reconstruct a :class:`Graph` from a model dict produced by export_graph."""
    if model.get("format") != FORMAT_NAME:
        raise GraphError(f"not a {FORMAT_NAME} model: format={model.get('format')!r}")
    if model.get("version") != FORMAT_VERSION:
        raise GraphError(f"unsupported {FORMAT_NAME} version: {model.get('version')!r}")
    graph = Graph(model.get("name", "imported"))
    max_id = -1

    def declare(vid: int, name: str) -> None:
        nonlocal max_id
        graph.values[vid] = Value(vid, name)
        max_id = max(max_id, vid)

    for item in model["inputs"]:
        declare(item["id"], item["name"])
        graph.inputs.append(item["id"])
    for vid_text, payload in model["initializers"].items():
        vid = int(vid_text)
        declare(vid, "const")
        graph.initializers[vid] = _decode_array(payload)
    for node_payload in model["nodes"]:
        for vid in node_payload["outputs"]:
            declare(vid, "v")
        graph.nodes.append(
            _make_node(node_payload["op"], node_payload["inputs"],
                       node_payload["outputs"], node_payload.get("attrs") or {})
        )
    graph.set_outputs(model["outputs"])
    import itertools

    graph._counter = itertools.count(max_id + 1)
    graph.validate()
    _validate_fused_nodes(graph)
    return graph


def _make_node(op: str, inputs: list[int], outputs: list[int], attrs: dict):
    from repro.tensor.graph import Node

    return Node(op, list(inputs), list(outputs), dict(attrs))


def save(graph: Graph, path: str) -> None:
    """Write the serialized graph to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as f:
        json.dump(export_graph(graph), f)


def load(path: str) -> Graph:
    """Load a graph previously written by :func:`save`."""
    with open(path, "r", encoding="utf-8") as f:
        return import_graph(json.load(f))


def dumps(graph: Graph) -> str:
    return json.dumps(export_graph(graph))


def loads(text: str) -> Graph:
    return import_graph(json.loads(text))
