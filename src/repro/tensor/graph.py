"""Graph IR for traced tensor programs.

A :class:`Graph` is the runtime's equivalent of a TorchScript/ONNX graph: a
flat list of op nodes over SSA values, plus constant initializers captured at
trace time.  TQP's execution layer lowers operator plans into these graphs for
the "torchscript" and "onnx" compilation targets.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Iterable

import numpy as np

from repro.errors import GraphError


@dataclasses.dataclass
class Value:
    """An SSA value produced by a graph input, an initializer, or a node."""

    id: int
    name: str
    shape: tuple[int, ...] | None = None
    dtype: str | None = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"%{self.id}:{self.name}"


@dataclasses.dataclass
class Node:
    """A single op application."""

    op: str
    inputs: list[int]
    outputs: list[int]
    attrs: dict[str, Any] = dataclasses.field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        ins = ", ".join(f"%{i}" for i in self.inputs)
        outs = ", ".join(f"%{o}" for o in self.outputs)
        return f"{outs} = {self.op}({ins}) {self.attrs if self.attrs else ''}"


class Graph:
    """A tensor program: inputs, initializers, nodes, outputs."""

    def __init__(self, name: str = "graph"):
        self.name = name
        self.values: dict[int, Value] = {}
        self.inputs: list[int] = []
        self.outputs: list[int] = []
        self.nodes: list[Node] = []
        self.initializers: dict[int, np.ndarray] = {}
        self._counter = itertools.count()

    # -- construction ------------------------------------------------------

    def new_value(self, name: str, shape: tuple[int, ...] | None = None,
                  dtype: str | None = None) -> Value:
        vid = next(self._counter)
        value = Value(vid, name, shape, dtype)
        self.values[vid] = value
        return value

    def add_input(self, name: str, shape: tuple[int, ...] | None = None,
                  dtype: str | None = None) -> Value:
        value = self.new_value(name, shape, dtype)
        self.inputs.append(value.id)
        return value

    def add_initializer(self, array: np.ndarray, name: str = "const") -> Value:
        value = self.new_value(name, tuple(array.shape), str(array.dtype))
        self.initializers[value.id] = array
        return value

    def add_node(self, op: str, inputs: list[int], n_outputs: int,
                 attrs: dict[str, Any] | None = None,
                 output_names: list[str] | None = None) -> list[Value]:
        outputs = []
        for i in range(n_outputs):
            name = output_names[i] if output_names else f"{op}_out{i}"
            outputs.append(self.new_value(name))
        node = Node(op, list(inputs), [v.id for v in outputs], dict(attrs or {}))
        self.nodes.append(node)
        return outputs

    def set_outputs(self, value_ids: Iterable[int]) -> None:
        self.outputs = list(value_ids)

    # -- inspection ----------------------------------------------------------

    def producer_of(self, value_id: int) -> Node | None:
        """Return the node producing ``value_id`` (None for inputs/initializers)."""
        for node in self.nodes:
            if value_id in node.outputs:
                return node
        return None

    def op_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.nodes:
            counts[node.op] = counts.get(node.op, 0) + 1
        return counts

    def referenced_values(self) -> set[int]:
        """All value ids reachable from inputs, initializers, nodes, outputs."""
        referenced: set[int] = set(self.inputs) | set(self.initializers)
        referenced.update(self.outputs)
        for node in self.nodes:
            referenced.update(node.inputs)
            referenced.update(node.outputs)
        return referenced

    def prune_values(self) -> None:
        """Drop metadata for values no node references any more.

        Passes that swallow intermediate values (e.g. elementwise fusion,
        which keeps them alive only inside a fused kernel's local program)
        call this so ``values`` stays in sync with the visible graph.
        """
        referenced = self.referenced_values()
        self.values = {vid: v for vid, v in self.values.items() if vid in referenced}

    def validate(self) -> None:
        """Check structural invariants; raise :class:`GraphError` on violation."""
        defined: set[int] = set(self.inputs) | set(self.initializers)
        for vid in defined:
            if vid not in self.values:
                raise GraphError(f"value %{vid} referenced but not declared")
        for node in self.nodes:
            for vid in node.inputs:
                if vid not in defined:
                    raise GraphError(
                        f"node {node.op} uses value %{vid} before definition"
                    )
            for vid in node.outputs:
                if vid in defined:
                    raise GraphError(f"value %{vid} defined twice")
                defined.add(vid)
        for vid in self.outputs:
            if vid not in defined:
                raise GraphError(f"graph output %{vid} is never defined")

    def __repr__(self) -> str:
        lines = [f"graph {self.name}("]
        lines.extend(f"    %{vid}: {self.values[vid].name}," for vid in self.inputs)
        lines.append("):")
        for vid, arr in self.initializers.items():
            lines.append(f"  init %{vid}: shape={arr.shape} dtype={arr.dtype}")
        for node in self.nodes:
            lines.append(f"  {node!r}")
        lines.append("  return " + ", ".join(f"%{vid}" for vid in self.outputs))
        return "\n".join(lines)

    def clone(self) -> "Graph":
        """Deep-copy the graph (initializer arrays are shared, nodes copied)."""
        g = Graph(self.name)
        g.values = {vid: dataclasses.replace(v) for vid, v in self.values.items()}
        g.inputs = list(self.inputs)
        g.outputs = list(self.outputs)
        g.nodes = [Node(n.op, list(n.inputs), list(n.outputs), dict(n.attrs))
                   for n in self.nodes]
        g.initializers = dict(self.initializers)
        g._counter = itertools.count(max(self.values, default=-1) + 1)
        return g
