"""Graph optimization passes applied before execution on compiled targets.

These are the tensor-level analogue of the rule-based IR optimizer TQP applies
on relational plans: dead-code elimination, constant folding, common
subexpression elimination, and a small peephole pass (redundant casts/device
moves).  The ablation benchmark (``benchmarks/bench_ablation_passes.py``)
measures their effect.
"""

from __future__ import annotations

import json

from repro.tensor import ops
from repro.tensor.graph import Graph, Node
from repro.tensor.tensor import Tensor

# Creation ops that only depend on attributes and therefore fold to constants.
_CREATION_OPS = {"zeros", "full", "arange"}

# Ops that must never be folded/merged because their semantics depend on the
# execution environment rather than only on input values.
_IMPURE_OPS = {"to_device"}


def dead_code_elimination(graph: Graph) -> Graph:
    """Drop nodes whose outputs do not (transitively) reach a graph output."""
    live: set[int] = set(graph.outputs)
    kept_reversed: list[Node] = []
    for node in reversed(graph.nodes):
        if any(out in live for out in node.outputs):
            kept_reversed.append(node)
            live.update(node.inputs)
    graph.nodes = list(reversed(kept_reversed))
    used = set(graph.outputs)
    for node in graph.nodes:
        used.update(node.inputs)
    graph.initializers = {vid: arr for vid, arr in graph.initializers.items()
                          if vid in used}
    return graph


def constant_folding(graph: Graph) -> Graph:
    """Evaluate nodes whose inputs are all constants and inline the results."""
    constant_ids = set(graph.initializers)
    new_nodes: list[Node] = []
    for node in graph.nodes:
        foldable = (
            node.op not in _IMPURE_OPS
            and (node.op in _CREATION_OPS or node.inputs)
            and all(vid in constant_ids for vid in node.inputs)
        )
        if not foldable:
            new_nodes.append(node)
            continue
        inputs = [Tensor(graph.initializers[vid]) for vid in node.inputs]
        outputs = ops.execute_op(node.op, inputs, node.attrs)
        for value_id, tensor in zip(node.outputs, outputs):
            graph.initializers[value_id] = tensor.data
            constant_ids.add(value_id)
    graph.nodes = new_nodes
    return graph


def _node_key(node: Node) -> str:
    return json.dumps([node.op, node.inputs, node.attrs], sort_keys=True, default=str)


def merge_duplicate_initializers(graph: Graph) -> Graph:
    """Collapse constant initializers with identical contents into one value."""
    seen: dict[tuple, int] = {}
    replacements: dict[int, int] = {}
    for value_id, array in list(graph.initializers.items()):
        key = (str(array.dtype), array.shape, array.tobytes())
        if key in seen:
            replacements[value_id] = seen[key]
            del graph.initializers[value_id]
        else:
            seen[key] = value_id
    if replacements:
        for node in graph.nodes:
            node.inputs = [replacements.get(vid, vid) for vid in node.inputs]
        graph.outputs = [replacements.get(vid, vid) for vid in graph.outputs]
    return graph


def common_subexpression_elimination(graph: Graph) -> Graph:
    """Merge structurally identical nodes (same op, inputs, and attributes).

    Duplicate constants are merged first so that e.g. two ``mul(x, 2.0)`` nodes
    tracing two separate ``2.0`` literals are still recognized as identical.
    """
    merge_duplicate_initializers(graph)
    seen: dict[str, Node] = {}
    replacements: dict[int, int] = {}
    new_nodes: list[Node] = []
    for node in graph.nodes:
        node.inputs = [replacements.get(vid, vid) for vid in node.inputs]
        if node.op in _IMPURE_OPS:
            new_nodes.append(node)
            continue
        key = _node_key(node)
        if key in seen:
            original = seen[key]
            for old, new in zip(node.outputs, original.outputs):
                replacements[old] = new
        else:
            seen[key] = node
            new_nodes.append(node)
    graph.nodes = new_nodes
    graph.outputs = [replacements.get(vid, vid) for vid in graph.outputs]
    return graph


def peephole(graph: Graph) -> Graph:
    """Small local rewrites: collapse cast→cast chains and no-op casts."""
    producers: dict[int, Node] = {}
    replacements: dict[int, int] = {}
    new_nodes: list[Node] = []
    for node in graph.nodes:
        node.inputs = [replacements.get(vid, vid) for vid in node.inputs]
        if node.op == "cast" and node.inputs:
            src = node.inputs[0]
            src_node = producers.get(src)
            # cast(cast(x, a), b) -> cast(x, b)
            if src_node is not None and src_node.op == "cast":
                node.inputs[0] = src_node.inputs[0]
            # cast(x, dtype_of_x) -> x  (only known when the value metadata is present)
            value = graph.values.get(node.inputs[0])
            if value is not None and value.dtype == node.attrs.get("dtype"):
                replacements[node.outputs[0]] = node.inputs[0]
                continue
        for out in node.outputs:
            producers[out] = node
        new_nodes.append(node)
    graph.nodes = new_nodes
    graph.outputs = [replacements.get(vid, vid) for vid in graph.outputs]
    return graph


DEFAULT_PASSES = (peephole, common_subexpression_elimination, constant_folding,
                  dead_code_elimination)


def optimize(graph: Graph, passes=DEFAULT_PASSES, validate: bool = True) -> Graph:
    """Apply ``passes`` in order (on the graph in place) and return it."""
    for pass_fn in passes:
        graph = pass_fn(graph)
    if validate:
        graph.validate()
    return graph
