"""Graph optimization passes applied before execution on compiled targets.

These are the tensor-level analogue of the rule-based IR optimizer TQP applies
on relational plans: dead-code elimination, constant folding, common
subexpression elimination, and a small peephole pass (redundant casts/device
moves).  The ablation benchmark (``benchmarks/bench_ablation_passes.py``)
measures their effect.
"""

from __future__ import annotations

import json

from repro.tensor import ops
from repro.tensor.graph import Graph, Node
from repro.tensor.tensor import Tensor

# Creation ops that only depend on attributes and therefore fold to constants.
_CREATION_OPS = {"zeros", "full", "arange"}

# Ops that must never be folded/merged because their semantics depend on the
# execution environment rather than only on input values.  The shard-exchange
# identities are here so constant folding/CSE/fusion cannot collapse the
# interconnect-transfer accounting distributed cost models charge per event.
_IMPURE_OPS = {"to_device", "morsel_dispatch",
               "shard_exchange", "shard_broadcast", "shard_gather"}

# Ops kept alive even when their outputs are unused: they exist for their
# accounting side effect (a morsel dispatch event the parallel cost models
# count), not for their data.
_SIDE_EFFECT_OPS = {"morsel_dispatch"}

# Never fuse these: impure ops, and already-fused kernels (fusion is one-shot;
# nesting fused programs would complicate the local SSA numbering for no win).
_FUSION_BLOCKLIST = _IMPURE_OPS | {"fused_kernel"}


def dead_code_elimination(graph: Graph) -> Graph:
    """Drop nodes whose outputs do not (transitively) reach a graph output."""
    live: set[int] = set(graph.outputs)
    kept_reversed: list[Node] = []
    for node in reversed(graph.nodes):
        if node.op in _SIDE_EFFECT_OPS or any(out in live for out in node.outputs):
            kept_reversed.append(node)
            live.update(node.inputs)
    graph.nodes = list(reversed(kept_reversed))
    used = set(graph.outputs)
    for node in graph.nodes:
        used.update(node.inputs)
    graph.initializers = {vid: arr for vid, arr in graph.initializers.items()
                          if vid in used}
    return graph


# Ops whose result depends only on the *shape* of their input (plus attrs).
# See fold_param_free_shapes below.
_SHAPE_ONLY_OPS = {"row_count", "full_like_rows", "arange_like"}


def fold_param_free_shapes(graph: Graph) -> Graph:
    """Fold shape-only ops that cannot be affected by a bind parameter.

    The shape-polymorphic creation ops (``row_count`` / ``full_like_rows`` /
    ``arange_like``) exist so traced programs replay correctly when a rebound
    parameter changes an intermediate size.  For a compiled program, the table
    inputs are fixed (the session's schema fingerprint revalidates them), so
    the only values that vary across executions are the ``param:<name>``
    inputs and everything downstream of them.  A shape-only op whose input is
    *not* tainted by a parameter therefore always sees the same shape — the
    one recorded at trace time — and folds to a constant, restoring the
    kernel-launch counts (and fusion opportunities) of non-parameterized
    plans.
    """
    import numpy as np

    from repro.tensor import dtype as dtypes

    tainted: set[int] = {
        vid for vid in graph.inputs
        if (value := graph.values.get(vid)) is not None
        and value.name.startswith("param:")
    }

    def shape_of(vid: int):
        if vid in graph.initializers:
            return graph.initializers[vid].shape
        value = graph.values.get(vid)
        return value.shape if value is not None else None

    new_nodes: list[Node] = []
    for node in graph.nodes:
        if any(vid in tainted for vid in node.inputs):
            tainted.update(node.outputs)
            new_nodes.append(node)
            continue
        if node.op in _SHAPE_ONLY_OPS and node.inputs:
            shape = shape_of(node.inputs[0])
            if shape is not None and len(shape) >= 1:
                attrs = node.attrs
                if node.op == "row_count":
                    folded = np.asarray(shape[0], dtype=np.int64)
                elif node.op == "arange_like":
                    axis = attrs.get("axis", 0)
                    if axis >= len(shape):
                        new_nodes.append(node)
                        continue
                    folded = np.arange(shape[axis], dtype=np.int64)
                else:  # full_like_rows
                    dt = dtypes.by_name(attrs.get("dtype", "float64"))
                    width = attrs.get("width")
                    out_shape = ((shape[0],) if width is None
                                 else (shape[0], int(width)))
                    folded = np.full(out_shape, attrs["value"], dtype=dt.np_dtype)
                graph.initializers[node.outputs[0]] = folded
                continue
        new_nodes.append(node)
    graph.nodes = new_nodes
    return graph


def constant_folding(graph: Graph) -> Graph:
    """Evaluate nodes whose inputs are all constants and inline the results."""
    constant_ids = set(graph.initializers)
    new_nodes: list[Node] = []
    for node in graph.nodes:
        foldable = (
            node.op not in _IMPURE_OPS
            and (node.op in _CREATION_OPS or node.inputs)
            and all(vid in constant_ids for vid in node.inputs)
        )
        if not foldable:
            new_nodes.append(node)
            continue
        inputs = [Tensor(graph.initializers[vid]) for vid in node.inputs]
        outputs = ops.execute_op(node.op, inputs, node.attrs)
        for value_id, tensor in zip(node.outputs, outputs):
            graph.initializers[value_id] = tensor.data
            constant_ids.add(value_id)
    graph.nodes = new_nodes
    return graph


def _node_key(node: Node) -> str:
    return json.dumps([node.op, node.inputs, node.attrs], sort_keys=True, default=str)


def merge_duplicate_initializers(graph: Graph) -> Graph:
    """Collapse constant initializers with identical contents into one value."""
    seen: dict[tuple, int] = {}
    replacements: dict[int, int] = {}
    for value_id, array in list(graph.initializers.items()):
        key = (str(array.dtype), array.shape, array.tobytes())
        if key in seen:
            replacements[value_id] = seen[key]
            del graph.initializers[value_id]
        else:
            seen[key] = value_id
    if replacements:
        for node in graph.nodes:
            node.inputs = [replacements.get(vid, vid) for vid in node.inputs]
        graph.outputs = [replacements.get(vid, vid) for vid in graph.outputs]
    return graph


def common_subexpression_elimination(graph: Graph) -> Graph:
    """Merge structurally identical nodes (same op, inputs, and attributes).

    Duplicate constants are merged first so that e.g. two ``mul(x, 2.0)`` nodes
    tracing two separate ``2.0`` literals are still recognized as identical.
    """
    merge_duplicate_initializers(graph)
    seen: dict[str, Node] = {}
    replacements: dict[int, int] = {}
    new_nodes: list[Node] = []
    for node in graph.nodes:
        node.inputs = [replacements.get(vid, vid) for vid in node.inputs]
        if node.op in _IMPURE_OPS:
            new_nodes.append(node)
            continue
        key = _node_key(node)
        if key in seen:
            original = seen[key]
            for old, new in zip(node.outputs, original.outputs):
                replacements[old] = new
        else:
            seen[key] = node
            new_nodes.append(node)
    graph.nodes = new_nodes
    graph.outputs = [replacements.get(vid, vid) for vid in graph.outputs]
    return graph


def peephole(graph: Graph) -> Graph:
    """Small local rewrites: collapse cast→cast chains and no-op casts."""
    producers: dict[int, Node] = {}
    replacements: dict[int, int] = {}
    new_nodes: list[Node] = []
    for node in graph.nodes:
        node.inputs = [replacements.get(vid, vid) for vid in node.inputs]
        if node.op == "cast" and node.inputs:
            src = node.inputs[0]
            src_node = producers.get(src)
            # cast(cast(x, a), b) -> cast(x, b)
            if src_node is not None and src_node.op == "cast":
                node.inputs[0] = src_node.inputs[0]
            # cast(x, dtype_of_x) -> x  (only known when the value metadata is present)
            value = graph.values.get(node.inputs[0])
            if value is not None and value.dtype == node.attrs.get("dtype"):
                replacements[node.outputs[0]] = node.inputs[0]
                continue
        for out in node.outputs:
            producers[out] = node
        new_nodes.append(node)
    graph.nodes = new_nodes
    graph.outputs = [replacements.get(vid, vid) for vid in graph.outputs]
    return graph


def _is_fusible(node: Node) -> bool:
    if node.op in _FUSION_BLOCKLIST or len(node.outputs) != 1:
        return False
    opdef = ops.OP_REGISTRY.get(node.op)
    return opdef is not None and opdef.elementwise


def _build_fused_node(group: list[Node], external_used: set[int]) -> Node:
    """Collapse ``group`` (in execution order) into one ``fused_kernel`` node.

    The fused sub-program uses local SSA numbering: the node's external inputs
    occupy slots ``0..k-1`` (in order of first use) and step *j* produces slot
    ``k+j``.  Only values consumed outside the group become node outputs; the
    rest live and die inside the kernel.
    """
    produced = {node.outputs[0] for node in group}
    ext_inputs: list[int] = []
    local: dict[int, int] = {}
    for node in group:
        for vid in node.inputs:
            if vid not in produced and vid not in local:
                local[vid] = len(ext_inputs)
                ext_inputs.append(vid)
    base = len(ext_inputs)
    for j, node in enumerate(group):
        local[node.outputs[0]] = base + j
    steps = [
        {"op": node.op, "inputs": [local[vid] for vid in node.inputs],
         "attrs": dict(node.attrs)}
        for node in group
    ]
    exposed = [node.outputs[0] for node in group if node.outputs[0] in external_used]
    if not exposed:  # fully dead group (DCE not run): keep the last value alive
        exposed = [group[-1].outputs[0]]
    attrs = {
        "steps": steps,
        "outputs": [local[vid] for vid in exposed],
        "label": "+".join(node.op for node in group),
    }
    # A chain fused entirely inside one morsel keeps its worker-lane stamp so
    # the parallel cost models still attribute the fused launch to that lane;
    # likewise a chain fused inside one device shard keeps its shard stamp.
    lanes = {node.attrs.get("lane") for node in group}
    if len(lanes) == 1 and None not in lanes:
        attrs["lane"] = lanes.pop()
    shards = {node.attrs.get("shard") for node in group}
    if len(shards) == 1 and None not in shards:
        attrs["shard"] = shards.pop()
    return Node("fused_kernel", ext_inputs, exposed, attrs)


def _schedule_for_fusion(graph: Graph) -> None:
    """Topologically reorder ``graph.nodes`` to maximize elementwise runs.

    List scheduling over the dependency DAG with two ready queues: drain
    non-fusible nodes first (stable by original position), and when none are
    ready emit every ready fusible node as one burst — fusible nodes unlocked
    mid-burst join it.  Nodes are pure dataflow, so any topological order
    computes identical results; this one clusters elementwise ops that were
    interleaved with other work (e.g. the arithmetic of two independent join
    pipelines) into contiguous runs the fusion grouping below can merge.
    """
    import heapq

    nodes = graph.nodes
    producer: dict[int, int] = {}
    for i, node in enumerate(nodes):
        for vid in node.outputs:
            producer[vid] = i
    indegree = [0] * len(nodes)
    dependents: list[list[int]] = [[] for _ in nodes]
    for i, node in enumerate(nodes):
        for j in {producer[vid] for vid in node.inputs if vid in producer}:
            indegree[i] += 1
            dependents[j].append(i)
    ready_fusible: list[int] = []
    ready_other: list[int] = []
    for i, node in enumerate(nodes):
        if indegree[i] == 0:
            heapq.heappush(ready_fusible if _is_fusible(node) else ready_other, i)
    order: list[int] = []
    in_burst = False
    while ready_fusible or ready_other:
        if (in_burst and ready_fusible) or not ready_other:
            i = heapq.heappop(ready_fusible)
            in_burst = True
        else:
            i = heapq.heappop(ready_other)
            in_burst = False
        order.append(i)
        for j in dependents[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                heapq.heappush(
                    ready_fusible if _is_fusible(nodes[j]) else ready_other, j)
    graph.nodes = [nodes[i] for i in order]


def fuse_elementwise(graph: Graph, min_group_size: int = 2) -> Graph:
    """Greedily merge runs of pure elementwise ops into ``fused_kernel`` nodes.

    Nodes are first rescheduled (topologically) to cluster elementwise ops,
    then consecutive nodes whose ops carry the ``elementwise`` registry hint
    are grouped and replaced by a single ``fused_kernel`` node executing the
    same steps in the same order, so results are bit-identical.  The payoff is
    dispatch-count physics: the profiler records one event per fused kernel,
    which makes the simulated GPU's per-launch overhead and the WASM per-op
    dispatch charge scale with *kernels launched* rather than with the length
    of scalar expression chains — exactly what kernel fusion buys on real
    tensor runtimes.
    """
    _schedule_for_fusion(graph)
    runs: list[object] = []
    current: list[Node] = []
    for node in graph.nodes:
        if _is_fusible(node):
            # Never fuse across worker lanes or device shards: a fused kernel
            # is one launch, and one launch cannot run on two morsel workers
            # (or two simulated devices) at once.
            if current and (
                    current[-1].attrs.get("lane") != node.attrs.get("lane")
                    or current[-1].attrs.get("shard") != node.attrs.get("shard")):
                runs.append(current)
                current = []
            current.append(node)
        else:
            if current:
                runs.append(current)
                current = []
            runs.append(node)
    if current:
        runs.append(current)

    # A group-produced value must surface as a fused-node output when any node
    # of a different group (or the graph output list) consumes it.
    fused_groups = [run for run in runs if isinstance(run, list)
                    and len(run) >= min_group_size]
    member_of: dict[int, int] = {}
    producer_group: dict[int, int] = {}
    for gi, group in enumerate(fused_groups):
        for node in group:
            member_of[id(node)] = gi
            producer_group[node.outputs[0]] = gi
    external_used: dict[int, set[int]] = {gi: set() for gi in range(len(fused_groups))}
    for node in graph.nodes:
        consumer_group = member_of.get(id(node))
        for vid in node.inputs:
            pg = producer_group.get(vid)
            if pg is not None and pg != consumer_group:
                external_used[pg].add(vid)
    for vid in graph.outputs:
        pg = producer_group.get(vid)
        if pg is not None:
            external_used[pg].add(vid)

    new_nodes: list[Node] = []
    gi = 0
    for run in runs:
        if not isinstance(run, list):
            new_nodes.append(run)
        elif len(run) < min_group_size:
            new_nodes.extend(run)
        else:
            new_nodes.append(_build_fused_node(run, external_used[gi]))
            gi += 1
    graph.nodes = new_nodes
    graph.prune_values()
    return graph


DEFAULT_PASSES = (peephole, common_subexpression_elimination,
                  fold_param_free_shapes, constant_folding,
                  dead_code_elimination, fuse_elementwise)


def optimize(graph: Graph, passes=DEFAULT_PASSES, validate: bool = True) -> Graph:
    """Apply ``passes`` in order (on the graph in place) and return it."""
    for pass_fn in passes:
        graph = pass_fn(graph)
    if validate:
        graph.validate()
    return graph
