"""Functional tensor operations (the kernel vocabulary of the runtime).

Every relational operator TQP generates is ultimately a composition of the ops
defined here — the same situation as the paper, where relational operators are
expressed with PyTorch ops.  Each op:

* executes eagerly with a numpy kernel,
* reports an event to the active profiler (operator name, bytes moved, wall
  time) — this powers the Figure-2 runtime breakdown and the simulated-device
  cost models, and
* records a node into the active trace, if any — this powers the
  TorchScript-like and ONNX-like compilation targets.

Ops are registered in :data:`OP_REGISTRY` so the graph interpreter can replay
traced programs by name.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

import numpy as np

from repro.errors import TensorRuntimeError
from repro.tensor import dtype as dtypes
from repro.tensor.device import CPU, Device, parse_device
from repro.tensor.tensor import Tensor, same_device


class OpDef:
    """Definition of a primitive operation.

    Attributes:
        name: unique op name used in traces and serialized graphs.
        kernel: function ``(arrays, attrs) -> list[np.ndarray]``.
        n_outputs: number of output tensors the kernel produces.
        elementwise: hint used by graph passes (fusion/CSE) and cost models.
        np_fn: for ops whose kernel is exactly ``[np_fn(*arrays)]`` and
            ignores attrs, the raw numpy callable; the codegen emitter calls
            it directly instead of going through the kernel wrapper.  ``None``
            for every other op.
        specialize: optional ``(attrs) -> fn(*arrays) -> np.ndarray`` factory
            for single-output ops whose kernel does per-call work on ``attrs``
            (decoding a slice key, reading an axis).  A compiled graph knows
            each node's attrs statically, so the emitter binds them once at
            compile time; the kernel stays the dynamic-dispatch reference.
    """

    __slots__ = ("name", "kernel", "n_outputs", "elementwise", "np_fn",
                 "specialize")

    def __init__(
        self,
        name: str,
        kernel: Callable[[list[np.ndarray], dict], list[np.ndarray]],
        n_outputs: int = 1,
        elementwise: bool = False,
        np_fn: "Callable | None" = None,
        specialize: "Callable | None" = None,
    ):
        self.name = name
        self.kernel = kernel
        self.n_outputs = n_outputs
        self.elementwise = elementwise
        self.np_fn = np_fn
        self.specialize = specialize


OP_REGISTRY: dict[str, OpDef] = {}


def register_op(
    name: str, n_outputs: int = 1, elementwise: bool = False,
    np_fn: "Callable | None" = None, specialize: "Callable | None" = None,
) -> Callable[[Callable], Callable]:
    """Register ``kernel`` under ``name`` in the global op registry."""

    def decorator(kernel: Callable) -> Callable:
        if name in OP_REGISTRY:
            raise TensorRuntimeError(f"op {name!r} registered twice")
        OP_REGISTRY[name] = OpDef(name, kernel, n_outputs, elementwise,
                                  np_fn, specialize)
        return kernel

    return decorator


def op_exists(name: str) -> bool:
    return name in OP_REGISTRY


def _record_profile(name: str, inputs: Sequence[Tensor], outputs: Sequence[Tensor],
                    elapsed_s: float, device: Device) -> None:
    from repro.tensor import profiler as _profiler

    prof = _profiler.current_profiler()
    if prof is None:
        return
    in_bytes = sum(t.nbytes for t in inputs)
    out_bytes = sum(t.nbytes for t in outputs)
    prof.record(name, elapsed_s, in_bytes, out_bytes, device)


def _record_trace(name: str, inputs: Sequence[Tensor], outputs: Sequence[Tensor],
                  attrs: dict) -> None:
    from repro.tensor import profiler as _profiler
    from repro.tensor import tracing as _tracing

    ctx = _tracing.current_trace()
    if ctx is None:
        return
    attrs = dict(attrs)
    # Stamp the active worker lane onto the node so that replaying the traced
    # graph preserves the morsel-parallel structure for the cost models.
    lane = _profiler.current_lane()
    if lane is not None:
        attrs.setdefault("lane", lane)
    # Likewise for the active device shard, so distributed plans replay with
    # their per-device structure (and interconnect accounting) intact.
    shard = _profiler.current_shard()
    if shard is not None:
        attrs.setdefault("shard", shard)
    ctx.record(name, list(inputs), list(outputs), attrs)


def execute_op(name: str, inputs: Sequence[Tensor], attrs: dict | None = None,
               device: Device | None = None) -> list[Tensor]:
    """Execute a registered op eagerly (profiled, but *not* traced).

    This is the entry point used by the graph interpreter; the public
    functional wrappers below add trace recording on top.
    """
    attrs = attrs or {}
    opdef = OP_REGISTRY.get(name)
    if opdef is None:
        raise TensorRuntimeError(f"unknown op: {name!r}")
    if device is None:
        device = same_device(inputs) if inputs else CPU
    arrays = [t.data for t in inputs]
    start = time.perf_counter()
    results = opdef.kernel(arrays, attrs)
    elapsed = time.perf_counter() - start
    outputs = [Tensor(np.asarray(r), device) for r in results]
    _record_profile(name, inputs, outputs, elapsed, device)
    return outputs


def _apply(name: str, inputs: Sequence[Tensor], attrs: dict | None = None,
           device: Device | None = None) -> Tensor:
    attrs = attrs or {}
    outputs = execute_op(name, inputs, attrs, device)
    _record_trace(name, inputs, outputs, attrs)
    return outputs[0]


def _apply_multi(name: str, inputs: Sequence[Tensor], attrs: dict | None = None,
                 device: Device | None = None) -> list[Tensor]:
    attrs = attrs or {}
    outputs = execute_op(name, inputs, attrs, device)
    _record_trace(name, inputs, outputs, attrs)
    return outputs


def _coerce(value: Any, device: Device | None = None, like: Tensor | None = None) -> Tensor:
    """Turn scalars / arrays into tensors, leaving tensors untouched."""
    if isinstance(value, Tensor):
        return value
    if like is not None and device is None:
        device = like.device
    return tensor(value, device=device)


def _pair(a: Any, b: Any) -> tuple[Tensor, Tensor, Device]:
    if isinstance(a, Tensor) and not isinstance(b, Tensor):
        b = _coerce(b, like=a)
    elif isinstance(b, Tensor) and not isinstance(a, Tensor):
        a = _coerce(a, like=b)
    else:
        a = _coerce(a)
        b = _coerce(b)
    device = same_device([a, b])
    return a, b, device


# ---------------------------------------------------------------------------
# creation / movement / casting
# ---------------------------------------------------------------------------


def tensor(data: Any, dtype: dtypes.DType | str | None = None,
           device: Device | str | None = None) -> Tensor:
    """Create a tensor from a scalar, sequence, or numpy array."""
    dev = parse_device(device)
    if isinstance(data, Tensor):
        arr = data.data
    else:
        arr = np.asarray(data)
    if dtype is not None:
        dt = dtypes.by_name(dtype) if isinstance(dtype, str) else dtype
        arr = arr.astype(dt.np_dtype, copy=False)
    else:
        # Normalize python ints/floats/bools and unsupported widths.
        dtypes.from_numpy(arr.dtype)  # raises for truly unsupported kinds
        arr = arr.astype(dtypes.from_numpy(arr.dtype).np_dtype, copy=False)
    return Tensor(arr, dev)


def constant(data: Any, dtype: dtypes.DType | str | None = None,
             device: Device | str | None = None) -> Tensor:
    """Alias of :func:`tensor` used by compilers for literal values."""
    return tensor(data, dtype=dtype, device=device)


@register_op("zeros")
def _zeros_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    dt = dtypes.by_name(attrs.get("dtype", "float64"))
    return [np.zeros(tuple(attrs["shape"]), dtype=dt.np_dtype)]


def zeros(shape: Sequence[int] | int, dtype: dtypes.DType | str = "float64",
          device: Device | str | None = None) -> Tensor:
    if isinstance(shape, int):
        shape = (shape,)
    name = dtype if isinstance(dtype, str) else dtype.name
    return _apply("zeros", [], {"shape": list(shape), "dtype": name},
                  device=parse_device(device))


@register_op("full")
def _full_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    dt = dtypes.by_name(attrs.get("dtype", "float64"))
    return [np.full(tuple(attrs["shape"]), attrs["value"], dtype=dt.np_dtype)]


def full(shape: Sequence[int] | int, value: Any, dtype: dtypes.DType | str = "float64",
         device: Device | str | None = None) -> Tensor:
    if isinstance(shape, int):
        shape = (shape,)
    name = dtype if isinstance(dtype, str) else dtype.name
    return _apply("full", [], {"shape": list(shape), "value": value, "dtype": name},
                  device=parse_device(device))


def ones(shape: Sequence[int] | int, dtype: dtypes.DType | str = "float64",
         device: Device | str | None = None) -> Tensor:
    return full(shape, 1, dtype=dtype, device=device)


@register_op("arange")
def _arange_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    dt = dtypes.by_name(attrs.get("dtype", "int64"))
    return [np.arange(attrs["start"], attrs["stop"], attrs["step"], dtype=dt.np_dtype)]


def arange(start: int, stop: int | None = None, step: int = 1,
           dtype: dtypes.DType | str = "int64",
           device: Device | str | None = None) -> Tensor:
    if stop is None:
        start, stop = 0, start
    name = dtype if isinstance(dtype, str) else dtype.name
    return _apply("arange", [],
                  {"start": start, "stop": stop, "step": step, "dtype": name},
                  device=parse_device(device))


# -- shape-polymorphic creation ops -----------------------------------------
#
# ``zeros`` / ``full`` / ``arange`` bake their shape into the traced graph as
# an attribute, which is fine for sizes fixed at compile time but wrong for
# sizes that depend on a *parameter binding* (a prepared query re-executed
# with a new value changes how many rows survive each filter).  The variants
# below take a reference tensor input instead and derive the size from it at
# run time, so traced programs replay correctly under new bindings.


@register_op("row_count")
def _row_count_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.asarray(arrays[0].shape[0], dtype=np.int64)]


def row_count(a: Tensor) -> Tensor:
    """Number of rows of ``a`` as a 0-d int64 tensor (shape read at run time)."""
    return _apply("row_count", [_coerce(a)])


@register_op("full_like_rows")
def _full_like_rows_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    dt = dtypes.by_name(attrs.get("dtype", "float64"))
    width = attrs.get("width")
    n = arrays[0].shape[0]
    shape = (n,) if width is None else (n, int(width))
    return [np.full(shape, attrs["value"], dtype=dt.np_dtype)]


def full_like_rows(ref: Tensor, value: Any, dtype: dtypes.DType | str = "float64",
                   width: int | None = None) -> Tensor:
    """A constant tensor with one row per row of ``ref`` (optionally 2-d)."""
    name = dtype if isinstance(dtype, str) else dtype.name
    attrs: dict = {"value": value, "dtype": name}
    if width is not None:
        attrs["width"] = int(width)
    return _apply("full_like_rows", [_coerce(ref)], attrs)


@register_op("arange_like")
def _arange_like_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.arange(arrays[0].shape[attrs.get("axis", 0)], dtype=np.int64)]


def arange_like(ref: Tensor, axis: int = 0) -> Tensor:
    """``arange(ref.shape[axis])`` with the extent read at run time."""
    return _apply("arange_like", [_coerce(ref)], {"axis": axis})


@register_op("arange_until")
def _arange_until_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.arange(max(0, int(arrays[0])), dtype=np.int64)]


def arange_until(stop: Tensor) -> Tensor:
    """``arange(stop)`` where ``stop`` is the value of a 0-d tensor."""
    return _apply("arange_until", [_coerce(stop)])


@register_op("split_rows", n_outputs=2)
def _split_rows_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    n = arrays[1].shape[0]
    return [arrays[0][:n], arrays[0][n:]]


def split_rows(a: Tensor, head_ref: Tensor) -> tuple[Tensor, Tensor]:
    """Split ``a`` after ``head_ref.shape[0]`` rows (extent read at run time)."""
    ta, tr, device = _pair(a, head_ref)
    head, tail = _apply_multi("split_rows", [ta, tr], device=device)
    return head, tail


@register_op("cast", elementwise=True)
def _cast_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    dt = dtypes.by_name(attrs["dtype"])
    return [arrays[0].astype(dt.np_dtype)]


def cast(a: Tensor, dtype: dtypes.DType | str) -> Tensor:
    name = dtype if isinstance(dtype, str) else dtype.name
    dtypes.by_name(name)  # validate
    return _apply("cast", [a], {"dtype": name})


@register_op("to_device")
def _to_device_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    # Data never actually moves (all kernels are numpy); the event matters for
    # the cost models, which charge PCIe-style transfer time for it.
    return [arrays[0]]


def to_device(a: Tensor, device: Device | str) -> Tensor:
    dev = parse_device(device)
    if dev == a.device:
        return a
    return _apply("to_device", [a], {"device": str(dev)}, device=dev)


@register_op("morsel_dispatch")
def _morsel_dispatch_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    # Identity: no data moves.  The event/node marks the hand-off of one morsel
    # to a worker lane; device cost models charge a fixed scheduling cost per
    # dispatch and must ignore the pass-through byte counts.
    return [arrays[0]]


def morsel_dispatch(a: Tensor, lane: int, morsel: int, rows: int = 0) -> Tensor:
    """Mark ``a`` (one column of a morsel) as dispatched to a worker lane.

    The op is a zero-copy identity kept load-bearing in traced graphs by
    threading the tensor through it, so dead-code elimination cannot drop the
    dispatch accounting that the morsel-parallel cost models rely on.
    """
    return _apply("morsel_dispatch", [a],
                  {"lane": int(lane), "morsel": int(morsel), "rows": int(rows)})


# -- distributed exchange ops -------------------------------------------------
#
# Like ``to_device``, the exchange ops are zero-copy identities whose traced
# nodes and profile events carry the *interconnect accounting* for distributed
# plans: one op per column tensor (and per validity mask), so summing event
# payload bytes reproduces the real bytes a shuffle/broadcast/gather would
# push over NVLink or PCIe.  Shard identity lives in the ``src``/``dst``
# attributes (plus the ambient ``shard`` scope), never in the device — every
# shard of a simulated multi-GPU run stays on the session device.


@register_op("shard_exchange")
def _shard_exchange_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [arrays[0]]


def shard_exchange(a: Tensor, src: int, dst: int) -> Tensor:
    """Mark ``a`` (one column fragment) as shuffled from shard ``src`` to ``dst``."""
    return _apply("shard_exchange", [a], {"src": int(src), "dst": int(dst)})


@register_op("shard_broadcast")
def _shard_broadcast_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [arrays[0]]


def shard_broadcast(a: Tensor, dst: int) -> Tensor:
    """Mark ``a`` (one column of a small build side) as replicated to shard ``dst``."""
    return _apply("shard_broadcast", [a], {"dst": int(dst)})


@register_op("shard_gather")
def _shard_gather_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [arrays[0]]


def shard_gather(a: Tensor, src: int) -> Tensor:
    """Mark ``a`` (one column of a shard result) as collected from shard ``src``."""
    return _apply("shard_gather", [a], {"src": int(src)})


# ---------------------------------------------------------------------------
# elementwise arithmetic
# ---------------------------------------------------------------------------


def _binary_op(name: str, np_fn: Callable) -> Callable[[Any, Any], Tensor]:
    @register_op(name, elementwise=True, np_fn=np_fn)
    def _kernel(arrays: list[np.ndarray], attrs: dict, _fn=np_fn) -> list[np.ndarray]:
        return [_fn(arrays[0], arrays[1])]

    def api(a: Any, b: Any) -> Tensor:
        ta, tb, device = _pair(a, b)
        return _apply(name, [ta, tb], device=device)

    api.__name__ = name
    api.__doc__ = f"Elementwise ``{name}`` with numpy broadcasting."
    return api


add = _binary_op("add", np.add)
sub = _binary_op("sub", np.subtract)
mul = _binary_op("mul", np.multiply)
div = _binary_op("div", np.true_divide)
floordiv = _binary_op("floordiv", np.floor_divide)
mod = _binary_op("mod", np.mod)
pow = _binary_op("pow", np.power)  # noqa: A001 - mirrors torch.pow
minimum = _binary_op("minimum", np.minimum)
maximum = _binary_op("maximum", np.maximum)

eq = _binary_op("eq", np.equal)
ne = _binary_op("ne", np.not_equal)
lt = _binary_op("lt", np.less)
le = _binary_op("le", np.less_equal)
gt = _binary_op("gt", np.greater)
ge = _binary_op("ge", np.greater_equal)

logical_and = _binary_op("logical_and", np.logical_and)
logical_or = _binary_op("logical_or", np.logical_or)
logical_xor = _binary_op("logical_xor", np.logical_xor)


def _unary_op(name: str, np_fn: Callable) -> Callable[[Any], Tensor]:
    @register_op(name, elementwise=True, np_fn=np_fn)
    def _kernel(arrays: list[np.ndarray], attrs: dict, _fn=np_fn) -> list[np.ndarray]:
        return [_fn(arrays[0])]

    def api(a: Any) -> Tensor:
        return _apply(name, [_coerce(a)])

    api.__name__ = name
    api.__doc__ = f"Elementwise ``{name}``."
    return api


neg = _unary_op("neg", np.negative)
abs_ = _unary_op("abs", np.abs)
exp = _unary_op("exp", np.exp)
log = _unary_op("log", np.log)
sqrt = _unary_op("sqrt", np.sqrt)
floor = _unary_op("floor", np.floor)
ceil = _unary_op("ceil", np.ceil)
round_ = _unary_op("round", np.round)
sign = _unary_op("sign", np.sign)
logical_not = _unary_op("logical_not", np.logical_not)
isnan = _unary_op("isnan", np.isnan)
tanh = _unary_op("tanh", np.tanh)
relu = _unary_op("relu", lambda x: np.maximum(x, 0))
sigmoid = _unary_op("sigmoid", lambda x: 1.0 / (1.0 + np.exp(-x)))


@register_op("clip", elementwise=True)
def _clip_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.clip(arrays[0], attrs.get("min"), attrs.get("max"))]


def clip(a: Tensor, min_value: float | None = None, max_value: float | None = None) -> Tensor:
    return _apply("clip", [_coerce(a)], {"min": min_value, "max": max_value})


@register_op("where", elementwise=True, np_fn=np.where)
def _where_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.where(arrays[0], arrays[1], arrays[2])]


def where(cond: Tensor, a: Any, b: Any) -> Tensor:
    cond = _coerce(cond)
    a = _coerce(a, like=cond)
    b = _coerce(b, like=cond)
    device = same_device([cond, a, b])
    return _apply("where", [cond, a, b], device=device)


@register_op("isin", np_fn=np.isin)
def _isin_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.isin(arrays[0], arrays[1])]


def isin(a: Tensor, values: Tensor) -> Tensor:
    """Elementwise membership test of ``a`` against the 1-d tensor ``values``."""
    ta, tv, device = _pair(a, values)
    return _apply("isin", [ta, tv], device=device)


# ---------------------------------------------------------------------------
# fused elementwise kernels (produced by passes.fuse_elementwise)
# ---------------------------------------------------------------------------


@register_op("fused_kernel", elementwise=True)
def _fused_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    """Execute a fused chain of elementwise ops as one kernel.

    ``attrs`` holds the fused sub-program in local SSA form: values
    ``0..len(arrays)-1`` are the kernel's inputs, step *j* appends value
    ``len(arrays)+j``, and ``attrs["outputs"]`` lists the local values the
    kernel returns.  Inner kernels are invoked directly on numpy arrays, so a
    fused chain costs one dispatch / one profiler event / one simulated
    kernel launch regardless of its length.
    """
    env: list[np.ndarray] = list(arrays)
    for step in attrs["steps"]:
        opdef = OP_REGISTRY.get(step["op"])
        if opdef is None:
            raise TensorRuntimeError(
                f"fused_kernel references unknown op {step['op']!r}"
            )
        step_inputs = [env[i] for i in step["inputs"]]
        env.extend(opdef.kernel(step_inputs, step.get("attrs") or {}))
    return [env[i] for i in attrs["outputs"]]


# ---------------------------------------------------------------------------
# reductions
# ---------------------------------------------------------------------------


def _reduction_op(name: str, np_fn: Callable) -> Callable:
    @register_op(name)
    def _kernel(arrays: list[np.ndarray], attrs: dict, _fn=np_fn) -> list[np.ndarray]:
        axis = attrs.get("axis")
        keepdims = attrs.get("keepdims", False)
        if axis is not None:
            axis = int(axis)
        return [np.asarray(_fn(arrays[0], axis=axis, keepdims=keepdims))]

    def api(a: Tensor, axis: int | None = None, keepdims: bool = False) -> Tensor:
        return _apply(name, [_coerce(a)], {"axis": axis, "keepdims": keepdims})

    api.__name__ = name
    api.__doc__ = f"Reduction ``{name}`` over ``axis`` (None = all elements)."
    return api


sum_ = _reduction_op("sum", np.sum)
prod = _reduction_op("prod", np.prod)
min_ = _reduction_op("min", np.min)
max_ = _reduction_op("max", np.max)
mean = _reduction_op("mean", np.mean)
any_ = _reduction_op("any", np.any)
all_ = _reduction_op("all", np.all)
argmax = _reduction_op("argmax", np.argmax)
argmin = _reduction_op("argmin", np.argmin)


@register_op("count_nonzero")
def _count_nonzero_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    axis = attrs.get("axis")
    return [np.asarray(np.count_nonzero(arrays[0], axis=axis))]


def count_nonzero(a: Tensor, axis: int | None = None) -> Tensor:
    return _apply("count_nonzero", [_coerce(a)], {"axis": axis})


@register_op("cumsum")
def _cumsum_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.cumsum(arrays[0], axis=attrs.get("axis"))]


def cumsum(a: Tensor, axis: int | None = None) -> Tensor:
    return _apply("cumsum", [_coerce(a)], {"axis": axis})


# ---------------------------------------------------------------------------
# shape manipulation
# ---------------------------------------------------------------------------


@register_op("reshape")
def _reshape_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [arrays[0].reshape(tuple(attrs["shape"]))]


def reshape(a: Tensor, shape: Sequence[int]) -> Tensor:
    return _apply("reshape", [_coerce(a)], {"shape": list(shape)})


@register_op("concat")
def _concat_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.concatenate(arrays, axis=attrs.get("axis", 0))]


def concat(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    ts = [_coerce(t) for t in tensors]
    if not ts:
        raise TensorRuntimeError("concat() needs at least one tensor")
    return _apply("concat", ts, {"axis": axis}, device=same_device(ts))


@register_op("stack")
def _stack_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.stack(arrays, axis=attrs.get("axis", 0))]


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    ts = [_coerce(t) for t in tensors]
    if not ts:
        raise TensorRuntimeError("stack() needs at least one tensor")
    return _apply("stack", ts, {"axis": axis}, device=same_device(ts))


def _slice_specialize(attrs: dict) -> Callable:
    key = _decode_slice_key(attrs["key"])
    return lambda a: a[key]


@register_op("slice", specialize=_slice_specialize)
def _slice_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    key = _decode_slice_key(attrs["key"])
    return [np.asarray(arrays[0][key])]


def _encode_slice_key(key: Any) -> Any:
    """Encode a (possibly nested) slice key into JSON-friendly structures."""
    if isinstance(key, tuple):
        return {"tuple": [_encode_slice_key(k) for k in key]}
    if isinstance(key, slice):
        return {"slice": [key.start, key.stop, key.step]}
    if isinstance(key, (int, np.integer)):
        return {"int": int(key)}
    if key is None:
        return {"none": True}
    if key is Ellipsis:
        return {"ellipsis": True}
    raise TensorRuntimeError(f"unsupported slice key component: {key!r}")


def _decode_slice_key(encoded: Any) -> Any:
    if "tuple" in encoded:
        return tuple(_decode_slice_key(k) for k in encoded["tuple"])
    if "slice" in encoded:
        start, stop, step = encoded["slice"]
        return slice(start, stop, step)
    if "int" in encoded:
        return encoded["int"]
    if "none" in encoded:
        return None
    if "ellipsis" in encoded:
        return Ellipsis
    raise TensorRuntimeError(f"cannot decode slice key: {encoded!r}")


def slice_(a: Tensor, key: Any) -> Tensor:
    """Basic (non-tensor) indexing: ints, slices, tuples thereof."""
    return _apply("slice", [_coerce(a)], {"key": _encode_slice_key(key)})


def narrow(a: Tensor, axis: int, start: int, length: int) -> Tensor:
    """Return a contiguous slice of ``length`` elements along ``axis``."""
    key: list[Any] = [slice(None)] * a.ndim
    key[axis] = slice(start, start + length)
    return slice_(a, tuple(key))


@register_op("pad2d")
def _pad2d_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    width = int(attrs["width"])
    value = attrs.get("value", 0)
    a = arrays[0]
    if a.ndim != 2:
        raise TensorRuntimeError("pad2d expects a 2-d tensor")
    if a.shape[1] >= width:
        return [a[:, :width]]
    out = np.full((a.shape[0], width), value, dtype=a.dtype)
    out[:, : a.shape[1]] = a
    return [out]


def pad2d(a: Tensor, width: int, value: Any = 0) -> Tensor:
    """Pad (or truncate) the second dimension of a 2-d tensor to ``width``.

    Used to align string tensors of different maximum lengths before
    comparisons, as required by the paper's padded string representation.
    """
    return _apply("pad2d", [_coerce(a)], {"width": width, "value": value})


@register_op("sliding_window")
def _sliding_window_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    width = int(attrs["width"])
    a = arrays[0]
    if a.ndim != 2:
        raise TensorRuntimeError("sliding_window expects a 2-d tensor")
    if a.shape[1] < width:
        pad = np.zeros((a.shape[0], width - a.shape[1]), dtype=a.dtype)
        a = np.concatenate([a, pad], axis=1)
    view = np.lib.stride_tricks.sliding_window_view(a, width, axis=1)
    return [np.ascontiguousarray(view)]


def sliding_window(a: Tensor, width: int) -> Tensor:
    """All width-``width`` windows of each row of a 2-d tensor.

    Output shape is ``(n, m - width + 1, width)``; this is the building block
    of the ``LIKE '%pattern%'`` implementation over padded string tensors.
    """
    return _apply("sliding_window", [_coerce(a)], {"width": width})


# ---------------------------------------------------------------------------
# gather / scatter / selection
# ---------------------------------------------------------------------------


def _take_specialize(attrs: dict) -> Callable:
    axis = attrs.get("axis", 0)
    return lambda a, idx: np.take(a, idx, axis=axis)


@register_op("take", specialize=_take_specialize)
def _take_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.take(arrays[0], arrays[1], axis=attrs.get("axis", 0))]


def take(a: Tensor, indices: Tensor, axis: int = 0) -> Tensor:
    """Gather rows (or elements along ``axis``) of ``a`` at ``indices``."""
    ta, ti, device = _pair(a, indices)
    return _apply("take", [ta, ti], {"axis": axis}, device=device)


def _boolean_mask_np(a: np.ndarray, mask: np.ndarray) -> np.ndarray:
    if mask.dtype != np.bool_:
        mask = mask.astype(bool)
    return a[mask]


@register_op("boolean_mask", np_fn=_boolean_mask_np)
def _boolean_mask_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [_boolean_mask_np(arrays[0], arrays[1])]


def boolean_mask(a: Tensor, mask: Tensor) -> Tensor:
    """Compact the rows of ``a`` selected by boolean ``mask``."""
    ta, tm, device = _pair(a, mask)
    return _apply("boolean_mask", [ta, tm], device=device)


def _nonzero_np(a: np.ndarray) -> np.ndarray:
    return np.nonzero(a)[0].astype(np.int64, copy=False)


@register_op("nonzero", np_fn=_nonzero_np)
def _nonzero_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [_nonzero_np(arrays[0])]


def nonzero(mask: Tensor) -> Tensor:
    """Indices of True entries of a 1-d boolean tensor."""
    return _apply("nonzero", [_coerce(mask)])


# Scatter/segment reductions accept their output size either as a baked int
# attribute or — for prepared-statement replay, where a rebound parameter can
# change how many rows/groups survive a filter — as a trailing 0-d int tensor
# input whose *value* is read at run time (attrs["size"] == "input").


def _scatter_size(arrays: list[np.ndarray], attrs: dict,
                  key: str = "size") -> tuple[list[np.ndarray], int]:
    if attrs.get(key) == "input":
        return arrays[:-1], int(arrays[-1])
    return arrays, int(attrs.get(key, 0))


def _scatter_inputs(inputs: list[Tensor], size: "int | Tensor",
                    attrs: dict, key: str = "size") -> list[Tensor]:
    if isinstance(size, Tensor):
        attrs[key] = "input"
        return inputs + [size]
    attrs[key] = int(size)
    return inputs


@register_op("scatter_add")
def _scatter_add_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    arrays, size = _scatter_size(arrays, attrs)
    index, values = arrays
    if values.dtype.kind == "f" and index.ndim == 1 and values.ndim == 1:
        # bincount accumulates out[index[i]] += values[i] in the same pass
        # order as np.add.at, already in float64, and is much faster.
        return [np.bincount(index, weights=values, minlength=size)]
    out = np.zeros(size, dtype=np.result_type(values.dtype, np.float64)
                   if values.dtype.kind == "f" else values.dtype)
    np.add.at(out, index, values)
    return [out]


def scatter_add(index: Tensor, values: Tensor, size: "int | Tensor") -> Tensor:
    """``out[index[i]] += values[i]`` over a fresh zero tensor of ``size``."""
    ti, tv, device = _pair(index, values)
    attrs: dict = {}
    inputs = _scatter_inputs([ti, tv], size, attrs)
    return _apply("scatter_add", inputs, attrs, device=device)


@register_op("scatter_min")
def _scatter_min_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    arrays, size = _scatter_size(arrays, attrs)
    index, values = arrays
    if values.dtype.kind == "f":
        fill = np.inf
    else:
        fill = np.iinfo(values.dtype).max
    out = np.full(size, fill, dtype=values.dtype)
    np.minimum.at(out, index, values)
    return [out]


def scatter_min(index: Tensor, values: Tensor, size: "int | Tensor") -> Tensor:
    ti, tv, device = _pair(index, values)
    attrs: dict = {}
    inputs = _scatter_inputs([ti, tv], size, attrs)
    return _apply("scatter_min", inputs, attrs, device=device)


@register_op("scatter_max")
def _scatter_max_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    arrays, size = _scatter_size(arrays, attrs)
    index, values = arrays
    if values.dtype.kind == "f":
        fill = -np.inf
    else:
        fill = np.iinfo(values.dtype).min
    out = np.full(size, fill, dtype=values.dtype)
    np.maximum.at(out, index, values)
    return [out]


def scatter_max(index: Tensor, values: Tensor, size: "int | Tensor") -> Tensor:
    ti, tv, device = _pair(index, values)
    attrs: dict = {}
    inputs = _scatter_inputs([ti, tv], size, attrs)
    return _apply("scatter_max", inputs, attrs, device=device)


@register_op("bincount")
def _bincount_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    arrays, minlength = _scatter_size(arrays, attrs, key="minlength")
    if len(arrays) > 1:
        return [np.bincount(arrays[0], weights=arrays[1], minlength=minlength)]
    return [np.bincount(arrays[0], minlength=minlength).astype(np.int64)]


def bincount(index: Tensor, weights: Tensor | None = None,
             minlength: "int | Tensor" = 0) -> Tensor:
    inputs = [_coerce(index)]
    if weights is not None:
        inputs.append(_coerce(weights, like=inputs[0]))
    attrs: dict = {}
    inputs = _scatter_inputs(inputs, minlength, attrs, key="minlength")
    return _apply("bincount", inputs, attrs, device=same_device(inputs[:1]))


# ---------------------------------------------------------------------------
# sorting / searching / grouping
# ---------------------------------------------------------------------------


@register_op("argsort")
def _argsort_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    kind = attrs.get("kind", "stable")
    return [np.argsort(arrays[0], kind=kind, axis=attrs.get("axis", -1)).astype(np.int64)]


def argsort(a: Tensor, axis: int = -1, stable: bool = True) -> Tensor:
    return _apply("argsort", [_coerce(a)],
                  {"axis": axis, "kind": "stable" if stable else "quicksort"})


@register_op("sort")
def _sort_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.sort(arrays[0], kind="stable", axis=attrs.get("axis", -1))]


def sort(a: Tensor, axis: int = -1) -> Tensor:
    return _apply("sort", [_coerce(a)], {"axis": axis})


@register_op("lexsort")
def _lexsort_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    # numpy lexsort: the *last* key is the primary key.
    return [np.lexsort(tuple(arrays)).astype(np.int64)]


def lexsort(keys: Sequence[Tensor]) -> Tensor:
    """Indirect sort over multiple keys; the last key is the primary key."""
    ts = [_coerce(k) for k in keys]
    if not ts:
        raise TensorRuntimeError("lexsort() needs at least one key")
    return _apply("lexsort", ts, device=same_device(ts))


@register_op("searchsorted")
def _searchsorted_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    side = attrs.get("side", "left")
    return [np.searchsorted(arrays[0], arrays[1], side=side).astype(np.int64)]


def searchsorted(sorted_values: Tensor, values: Tensor, side: str = "left") -> Tensor:
    ta, tv, device = _pair(sorted_values, values)
    return _apply("searchsorted", [ta, tv], {"side": side}, device=device)


@register_op("unique", n_outputs=3)
def _unique_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    values, inverse, counts = np.unique(arrays[0], return_inverse=True, return_counts=True)
    return [values, inverse.astype(np.int64), counts.astype(np.int64)]


def unique(a: Tensor) -> tuple[Tensor, Tensor, Tensor]:
    """Sorted unique values, inverse indices, and counts of a 1-d tensor."""
    out = _apply_multi("unique", [_coerce(a)])
    return out[0], out[1], out[2]


@register_op("reduceat_sum")
def _reduceat_sum_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    data, offsets = arrays
    if offsets.size == 0:
        return [np.zeros(0, dtype=data.dtype)]
    return [np.add.reduceat(data, offsets)]


def reduceat_sum(data: Tensor, offsets: Tensor) -> Tensor:
    """Segmented sum: ``offsets`` are the start index of each segment."""
    td, to, device = _pair(data, offsets)
    return _apply("reduceat_sum", [td, to], device=device)


@register_op("repeat")
def _repeat_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.repeat(arrays[0], arrays[1], axis=attrs.get("axis"))]


def repeat(a: Tensor, repeats: Tensor, axis: int | None = None) -> Tensor:
    """Repeat each element of ``a`` by the matching count in ``repeats``.

    The building block for materializing ragged join matches as flat index
    vectors (left row *i* appears ``repeats[i]`` times).
    """
    ta, tr, device = _pair(a, repeats)
    return _apply("repeat", [ta, tr], {"axis": axis}, device=device)


@register_op("matmul")
def _matmul_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    return [np.matmul(arrays[0], arrays[1])]


def matmul(a: Tensor, b: Tensor) -> Tensor:
    ta, tb, device = _pair(a, b)
    return _apply("matmul", [ta, tb], device=device)


@register_op("softmax")
def _softmax_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    axis = attrs.get("axis", -1)
    x = arrays[0]
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return [e / np.sum(e, axis=axis, keepdims=True)]


def softmax(a: Tensor, axis: int = -1) -> Tensor:
    return _apply("softmax", [_coerce(a)], {"axis": axis})


@register_op("one_hot")
def _one_hot_kernel(arrays: list[np.ndarray], attrs: dict) -> list[np.ndarray]:
    depth = int(attrs["depth"])
    idx = arrays[0].astype(np.int64)
    out = np.zeros((idx.shape[0], depth), dtype=np.float64)
    out[np.arange(idx.shape[0]), idx] = 1.0
    return [out]


def one_hot(indices: Tensor, depth: int) -> Tensor:
    return _apply("one_hot", [_coerce(indices)], {"depth": depth})


# Convenient python-keyword-free aliases (mirroring torch naming).
absolute = abs_
reduce_sum = sum_
reduce_min = min_
reduce_max = max_
reduce_mean = mean
reduce_any = any_
reduce_all = all_
