"""Tensor element types supported by the mini tensor runtime.

The runtime supports the small set of dtypes TQP needs for relational data:
integers for keys/dates/string code points, floats for measures, and booleans
for filter masks.  Each :class:`DType` wraps the corresponding numpy dtype so
kernels can stay thin wrappers around numpy.
"""

from __future__ import annotations

import dataclasses
from typing import Any

import numpy as np

from repro.errors import DTypeError


@dataclasses.dataclass(frozen=True)
class DType:
    """A tensor element type.

    Attributes:
        name: canonical name (``"float32"``, ``"int64"``, ...).
        np_dtype: the numpy dtype objects kernels operate on.
        is_floating: True for float types.
        is_integer: True for (signed or unsigned) integer types.
    """

    name: str
    np_dtype: np.dtype
    is_floating: bool
    is_integer: bool

    @property
    def is_numeric(self) -> bool:
        return self.is_floating or self.is_integer

    @property
    def itemsize(self) -> int:
        return self.np_dtype.itemsize

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"repro.{self.name}"


float32 = DType("float32", np.dtype(np.float32), True, False)
float64 = DType("float64", np.dtype(np.float64), True, False)
int8 = DType("int8", np.dtype(np.int8), False, True)
int32 = DType("int32", np.dtype(np.int32), False, True)
int64 = DType("int64", np.dtype(np.int64), False, True)
uint8 = DType("uint8", np.dtype(np.uint8), False, True)
bool_ = DType("bool", np.dtype(np.bool_), False, False)

ALL_DTYPES = (float32, float64, int8, int32, int64, uint8, bool_)

_BY_NAME = {d.name: d for d in ALL_DTYPES}
_BY_NP = {d.np_dtype: d for d in ALL_DTYPES}


def by_name(name: str) -> DType:
    """Look up a dtype by canonical name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise DTypeError(f"unknown dtype name: {name!r}") from None


def from_numpy(np_dtype: Any) -> DType:
    """Map a numpy dtype (or anything np.dtype accepts) to a runtime DType."""
    resolved = np.dtype(np_dtype)
    if resolved in _BY_NP:
        return _BY_NP[resolved]
    # Promote unsupported widths to the nearest supported dtype so that data
    # ingestion (e.g. int16 CSV columns) does not fail needlessly.
    if np.issubdtype(resolved, np.floating):
        return float64
    if np.issubdtype(resolved, np.signedinteger):
        return int64
    if np.issubdtype(resolved, np.unsignedinteger):
        return int64
    if np.issubdtype(resolved, np.bool_):
        return bool_
    raise DTypeError(f"unsupported numpy dtype: {resolved}")


def result_type(*dtypes: DType) -> DType:
    """Numpy-style type promotion restricted to the supported dtype set."""
    if not dtypes:
        raise DTypeError("result_type() needs at least one dtype")
    promoted = np.result_type(*[d.np_dtype for d in dtypes])
    return from_numpy(promoted)
