"""Lazy trace capture: run a Python function once and record the tensor ops.

This mirrors ``torch.jit.trace``: the function is executed with example inputs,
every op dispatched through :mod:`repro.tensor.ops` is appended to a
:class:`~repro.tensor.graph.Graph`, and tensors that were not produced inside
the trace (e.g. model weights, literal constants) are captured as graph
initializers.

The usual tracing caveat applies and is inherited deliberately from the paper's
TorchScript backend: Python-level control flow is baked in at trace time.
TQP's relational operators are written to be shape- and data-polymorphic, so a
program traced at one input size replays correctly at other sizes.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.errors import GraphError
from repro.tensor.graph import Graph, Value
from repro.tensor.tensor import Tensor

# Trace capture is **thread-scoped**: each thread records into its own active
# trace context, so a serving worker tracing a cold statement never captures
# ops dispatched concurrently by other workers (their requests would otherwise
# leak foreign nodes into the graph).  The executor serializes compilation per
# plan (see ``Executor.compile_program``) and always traces on the thread that
# runs the ops, which together make tracing safe under a worker pool.
_STATE = threading.local()


def current_trace() -> "TraceContext | None":
    """Return the active trace context, if a trace is being recorded."""
    return getattr(_STATE, "trace", None)


class TraceContext:
    """Accumulates nodes while a function is being traced."""

    def __init__(self, name: str = "traced"):
        self.graph = Graph(name)

    # -- used by ops._record_trace ---------------------------------------

    def value_for(self, tensor: Tensor) -> Value:
        """Return the symbolic value of ``tensor``, capturing it as a constant
        initializer when it did not originate inside this trace."""
        value = tensor.trace_value
        if value is not None and self.graph.values.get(value.id) is value:
            return value
        captured = self.graph.add_initializer(tensor.data, name="captured_const")
        tensor.trace_value = captured
        return captured

    def record(self, op: str, inputs: list[Tensor], outputs: list[Tensor],
               attrs: dict) -> None:
        input_ids = [self.value_for(t).id for t in inputs]
        out_values = self.graph.add_node(op, input_ids, len(outputs), attrs)
        for tensor, value in zip(outputs, out_values):
            value.shape = tensor.shape
            value.dtype = tensor.dtype.name
            tensor.trace_value = value

    # -- context management -----------------------------------------------

    def __enter__(self) -> "TraceContext":
        if current_trace() is not None:
            raise GraphError("nested traces are not supported")
        _STATE.trace = self
        return self

    def __exit__(self, *exc_info) -> None:
        # Only clear our own activation: if an exception unwound through a
        # stale context on a pooled worker thread, a blind reset could cancel
        # a trace that a fresh context on this thread legitimately owns.
        if current_trace() is self:
            _STATE.trace = None


def trace(fn: Callable[..., "Tensor | Sequence[Tensor]"],
          example_inputs: Sequence[Tensor],
          name: str = "traced",
          input_names: Sequence[str] | None = None) -> Graph:
    """Trace ``fn`` over ``example_inputs`` and return the captured graph.

    The function may return a single tensor or a sequence of tensors; the
    returned graph has one output per returned tensor, in order.
    ``input_names`` optionally labels the graph inputs (e.g. table columns
    and bind parameters), defaulting to ``input_<i>``.
    """
    if input_names is not None and len(input_names) != len(example_inputs):
        raise GraphError("input_names must match example_inputs in length")
    ctx = TraceContext(name)
    with ctx:
        symbolic_inputs: list[Tensor] = []
        for i, example in enumerate(example_inputs):
            if not isinstance(example, Tensor):
                raise GraphError("trace() example inputs must be tensors")
            input_name = input_names[i] if input_names is not None else f"input_{i}"
            value = ctx.graph.add_input(input_name, example.shape, example.dtype.name)
            # Re-wrap so caller-held tensors keep trace_value = None.
            wrapped = Tensor(example.data, example.device)
            wrapped.trace_value = value
            symbolic_inputs.append(wrapped)
        result = fn(*symbolic_inputs)
    if isinstance(result, Tensor):
        results: Sequence[Tensor] = [result]
    elif isinstance(result, (list, tuple)):
        results = list(result)
    else:
        raise GraphError(
            "traced function must return a tensor or a sequence of tensors, "
            f"got {type(result).__name__}"
        )
    output_ids = []
    for tensor in results:
        if not isinstance(tensor, Tensor):
            raise GraphError("traced function must return tensors")
        if tensor.trace_value is None:
            # The output did not pass through any op (e.g. an input returned
            # unchanged or a constant); capture it so the graph stays valid.
            output_ids.append(ctx.value_for(tensor).id)
        else:
            output_ids.append(tensor.trace_value.id)
    ctx.graph.set_outputs(output_ids)
    ctx.graph.validate()
    return ctx.graph
