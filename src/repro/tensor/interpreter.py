"""Interpreter for traced tensor graphs.

The interpreter replays a :class:`~repro.tensor.graph.Graph` over new inputs,
one node at a time.  It is the de-optimized sibling of the codegen executor
(:mod:`repro.tensor.codegen`): both consume the shared op-semantics registry
(:mod:`repro.tensor.op_semantics`), so a graph produces identical results and
identical profile-event streams under either.  The interpreter remains the
executor of record for backends that *model* per-node dispatch overhead (the
ONNX-like/WASM path wraps it with a busy-wait per node, see
``repro.backends.wasm_sim``) and the fallback for graphs codegen rejects.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import GraphError
from repro.tensor import op_semantics, ops
from repro.tensor.device import Device, parse_device
from repro.tensor.graph import Graph
from repro.tensor.profiler import lane_scope, shard_scope
from repro.tensor.tensor import Tensor


class _replay_scopes:
    """Re-enter the lane/shard scopes a node was traced under (either may be
    ``None``), composing :class:`shard_scope` around :class:`lane_scope`."""

    def __init__(self, lane: "int | None", shard: "int | None"):
        self._guards = []
        if shard is not None:
            self._guards.append(shard_scope(shard))
        if lane is not None:
            self._guards.append(lane_scope(lane))

    def __enter__(self) -> "_replay_scopes":
        for guard in self._guards:
            guard.__enter__()
        return self

    def __exit__(self, *exc_info) -> None:
        for guard in reversed(self._guards):
            guard.__exit__(*exc_info)


class GraphInterpreter:
    """Executes a graph node-by-node.

    Args:
        graph: the tensor program to run.
        per_node_overhead_s: artificial fixed cost added per node execution.
            0 for the native targets; the WASM simulation sets this to a
            positive value to model interpreter/JS dispatch overheads.
    """

    def __init__(self, graph: Graph, per_node_overhead_s: float = 0.0):
        graph.validate()
        self.graph = graph
        self.per_node_overhead_s = per_node_overhead_s

    def run(self, inputs: Sequence[Tensor], device: Device | str | None = None
            ) -> list[Tensor]:
        """Run the graph; returns one tensor per graph output."""
        dev = parse_device(device) if device is not None else None
        if len(inputs) != len(self.graph.inputs):
            raise GraphError(
                f"graph expects {len(self.graph.inputs)} inputs, got {len(inputs)}"
            )
        env: dict[int, Tensor] = {}
        for value_id, tensor in zip(self.graph.inputs, inputs):
            env[value_id] = tensor if dev is None else tensor.to(dev)
        for value_id, array in self.graph.initializers.items():
            env[value_id] = Tensor(array, dev if dev is not None else
                                   (inputs[0].device if inputs else parse_device(None)))
        for node in self.graph.nodes:
            node_inputs = [env[value_id] for value_id in node.inputs]
            node_device = dev
            if node.op == op_semantics.TRANSFER_OP:
                node_device = op_semantics.transfer_target(node.attrs)
                if node_inputs and op_semantics.transfer_is_noop(
                        node_inputs[0].device, node_device):
                    env[node.outputs[0]] = node_inputs[0]
                    continue
            lane = op_semantics.node_lane(node.attrs)
            shard = op_semantics.node_shard(node.attrs)
            if lane is None and shard is None:
                outputs = ops.execute_op(node.op, node_inputs, node.attrs, node_device)
            else:
                # Nodes traced inside a morsel-parallel or sharded region carry
                # the worker lane / device shard they ran on; re-entering those
                # scopes while replaying keeps the profile (and therefore the
                # simulated-device cost models) aware of the structure.
                with _replay_scopes(lane, shard):
                    outputs = ops.execute_op(node.op, node_inputs, node.attrs,
                                             node_device)
            if self.per_node_overhead_s:
                self._burn(self.per_node_overhead_s)
            if len(outputs) != len(node.outputs):
                raise GraphError(
                    f"op {node.op} produced {len(outputs)} outputs, "
                    f"expected {len(node.outputs)}"
                )
            for value_id, tensor in zip(node.outputs, outputs):
                env[value_id] = tensor
        missing = [vid for vid in self.graph.outputs if vid not in env]
        if missing:
            raise GraphError(f"graph outputs never produced: {missing}")
        return [env[value_id] for value_id in self.graph.outputs]

    @staticmethod
    def _burn(seconds: float) -> None:
        """Busy-wait used to model fixed per-node dispatch overhead."""
        import time

        end = time.perf_counter() + seconds
        while time.perf_counter() < end:
            pass
