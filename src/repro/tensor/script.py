"""TorchScript-like compilation target: trace + optimize + interpret.

``script_trace(fn, example_inputs)`` returns a :class:`ScriptedProgram` — a
standalone, optimized tensor program that can be executed repeatedly on new
inputs (and moved across devices), matching the role ``torch.jit.trace`` plays
in the paper's TorchScript backend.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.tensor import passes as graph_passes
from repro.tensor import tracing
from repro.tensor.device import Device
from repro.tensor.graph import Graph
from repro.tensor.interpreter import GraphInterpreter
from repro.tensor.tensor import Tensor


class ScriptedProgram:
    """An optimized, replayable tensor program."""

    def __init__(self, graph: Graph, per_node_overhead_s: float = 0.0):
        self.graph = graph
        self._interpreter = GraphInterpreter(graph, per_node_overhead_s)

    def __call__(self, *inputs: Tensor, device: Device | str | None = None
                 ) -> list[Tensor]:
        return self._interpreter.run(list(inputs), device=device)

    def run(self, inputs: Sequence[Tensor], device: Device | str | None = None
            ) -> list[Tensor]:
        return self._interpreter.run(list(inputs), device=device)

    @property
    def num_nodes(self) -> int:
        return len(self.graph.nodes)

    def op_counts(self) -> dict[str, int]:
        return self.graph.op_counts()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ScriptedProgram(nodes={self.num_nodes})"


def script_trace(fn: Callable, example_inputs: Sequence[Tensor],
                 optimize: bool = True, name: str = "scripted") -> ScriptedProgram:
    """Trace ``fn`` and return an optimized :class:`ScriptedProgram`."""
    graph = tracing.trace(fn, example_inputs, name=name)
    if optimize:
        graph = graph_passes.optimize(graph)
    return ScriptedProgram(graph)
