"""TorchScript-like compilation target: trace + optimize + execute.

``script_trace(fn, example_inputs)`` returns a :class:`ScriptedProgram` — a
standalone, optimized tensor program that can be executed repeatedly on new
inputs (and moved across devices), matching the role ``torch.jit.trace`` plays
in the paper's TorchScript backend.

A scripted program owns the choice of *executor*:

* ``interpret`` — replay the graph node-by-node
  (:class:`~repro.tensor.interpreter.GraphInterpreter`);
* ``compiled`` — lower the graph to one generated Python function
  (:mod:`repro.tensor.codegen`) and call that; raises
  :class:`~repro.errors.CodegenError` when the graph cannot be lowered;
* ``auto`` — compile when possible, otherwise silently fall back to the
  interpreter and remember why in :attr:`ScriptedProgram.fallback_reason`.

Both executors consume the shared op-semantics registry, so results and
profile-event streams are identical either way.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.errors import CodegenError
from repro.tensor import codegen, passes as graph_passes, tracing
from repro.tensor.device import Device
from repro.tensor.graph import Graph
from repro.tensor.interpreter import GraphInterpreter
from repro.tensor.tensor import Tensor

#: Valid values for the ``executor`` knob, here and in ExecutionOptions.
EXECUTOR_MODES = ("interpret", "compiled", "auto")


class ScriptedProgram:
    """An optimized, replayable tensor program."""

    def __init__(self, graph: Graph, per_node_overhead_s: float = 0.0,
                 executor: str = "interpret"):
        if executor not in EXECUTOR_MODES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_MODES}, got {executor!r}")
        self.graph = graph
        self.executor = executor
        self._interpreter = GraphInterpreter(graph, per_node_overhead_s)
        self._compiled: "codegen.CompiledGraphProgram | None" = None
        #: Why ``auto`` fell back to the interpreter (``None`` = it did not).
        self.fallback_reason: "str | None" = None
        if executor == "compiled":
            self._compiled = codegen.compile_graph(graph, per_node_overhead_s)
        elif executor == "auto":
            try:
                self._compiled = codegen.compile_graph(graph,
                                                       per_node_overhead_s)
            except CodegenError as exc:
                self.fallback_reason = str(exc)

    @property
    def uses_codegen(self) -> bool:
        """Whether :meth:`run` dispatches to generated code."""
        return self._compiled is not None

    @property
    def compiled_source(self) -> "str | None":
        """The generated Python source, when codegen is active."""
        return self._compiled.source if self._compiled is not None else None

    def serving_fn(self, device: Device | str):
        """Unprofiled serving entry (see ``CompiledGraphProgram.serving_fn``).

        ``None`` when this program replays through the interpreter — callers
        fall back to :meth:`run` per request.
        """
        if self._compiled is None:
            return None
        return self._compiled.serving_fn(device)

    def __call__(self, *inputs: Tensor, device: Device | str | None = None
                 ) -> list[Tensor]:
        return self.run(list(inputs), device=device)

    def run(self, inputs: Sequence[Tensor], device: Device | str | None = None
            ) -> list[Tensor]:
        if self._compiled is not None:
            return self._compiled.run(list(inputs), device=device)
        return self._interpreter.run(list(inputs), device=device)

    @property
    def num_nodes(self) -> int:
        return len(self.graph.nodes)

    def op_counts(self) -> dict[str, int]:
        return self.graph.op_counts()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        how = "compiled" if self.uses_codegen else "interpreted"
        return f"ScriptedProgram(nodes={self.num_nodes}, {how})"


def script_trace(fn: Callable, example_inputs: Sequence[Tensor],
                 optimize: bool = True, name: str = "scripted",
                 executor: str = "interpret") -> ScriptedProgram:
    """Trace ``fn`` and return an optimized :class:`ScriptedProgram`."""
    graph = tracing.trace(fn, example_inputs, name=name)
    if optimize:
        graph = graph_passes.optimize(graph)
    return ScriptedProgram(graph, executor=executor)
