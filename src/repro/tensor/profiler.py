"""Op-level profiler (the PyTorch-Profiler / TensorBoard stand-in).

The profiler collects one event per executed op: name, wall time, bytes read
and written, and the device the op ran on.  Downstream consumers:

* ``repro.viz.breakdown`` renders the Figure-2 per-operator runtime breakdown,
* ``repro.backends.gpu_sim`` / ``wasm_sim`` feed the events into their cost
  models to produce simulated device times,
* :meth:`Profiler.to_chrome_trace` writes a ``chrome://tracing`` compatible
  JSON file (what TensorBoard's trace viewer consumes).
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from typing import Iterable

from repro.tensor.device import Device

# Profiler/lane activation is **execution-scoped**: each thread has its own
# activation stacks, so concurrent executions on a serving worker pool never
# see each other's profilers, and a profiler is active exactly where it was
# entered.  Code that hands an execution to another thread ships the caller's
# activation along with it via :func:`capture_scope` — without that, ops
# dispatched on the worker thread would find no active profiler and their
# events would be silently dropped (wrong simulated kernel times, missing
# lane events).
_STATE = threading.local()


def current_profiler() -> "Profiler | None":
    stack = getattr(_STATE, "stack", None)
    if not stack:
        return None
    return stack[-1]


def capture_scope() -> "ProfileScope":
    """Snapshot the calling thread's profiler/lane activation.

    The returned :class:`ProfileScope` is a context manager that re-activates
    the captured profilers on whatever thread enters it.  A serving runtime
    captures the scope at request admission and enters it on the worker
    thread around the execution, so profiled results are identical whether a
    query runs on the caller thread or a pool thread.
    """
    return ProfileScope(list(getattr(_STATE, "stack", None) or ()),
                        list(getattr(_STATE, "lanes", None) or ()),
                        list(getattr(_STATE, "shards", None) or ()))


class ProfileScope:
    """A captured profiler/lane activation, re-enterable on any thread.

    Entering pushes the captured profilers onto the *current* thread's
    activation stack (recording itself is thread-safe, see
    :meth:`Profiler.record`); exiting restores the thread's previous state.
    Re-entrant and usable from several threads at once.
    """

    def __init__(self, stack: "list[Profiler]", lanes: "list[int]",
                 shards: "list[int] | None" = None):
        self._stack = stack
        self._lanes = lanes
        self._shards = shards or []

    @property
    def is_empty(self) -> bool:
        """True when no profiler was active at capture time."""
        return not self._stack and not self._lanes and not self._shards

    def __enter__(self) -> "ProfileScope":
        saved = (getattr(_STATE, "stack", None) or [],
                 getattr(_STATE, "lanes", None) or [],
                 getattr(_STATE, "shards", None) or [])
        if not hasattr(_STATE, "saved"):
            _STATE.saved = []
        _STATE.saved.append(saved)
        _STATE.stack = saved[0] + self._stack
        _STATE.lanes = saved[1] + self._lanes
        _STATE.shards = saved[2] + self._shards
        return self

    def __exit__(self, *exc_info) -> None:
        saved = _STATE.saved.pop() if getattr(_STATE, "saved", None) \
            else ([], [], [])
        _STATE.stack, _STATE.lanes, _STATE.shards = saved


# -- worker-lane annotation ---------------------------------------------------
#
# The morsel-driven parallel operators (``repro.core.operators.parallel``)
# execute one morsel at a time on a simulated worker lane.  While a lane is
# active every recorded op event carries its lane id, and every traced graph
# node is stamped with a ``lane`` attribute — which is how the device cost
# models reconstruct per-worker timelines from a single-threaded run, on both
# the eager and the traced (graph-replay) backends.


def current_lane() -> "int | None":
    """The active worker lane id, or ``None`` outside any parallel region."""
    lanes = getattr(_STATE, "lanes", None)
    if not lanes:
        return None
    return lanes[-1]


class lane_scope:
    """Context manager marking ops executed inside it as worker-lane work."""

    def __init__(self, lane: int):
        self.lane = lane

    def __enter__(self) -> "lane_scope":
        lanes = getattr(_STATE, "lanes", None)
        if lanes is None:
            lanes = []
            _STATE.lanes = lanes
        lanes.append(self.lane)
        return self

    def __exit__(self, *exc_info) -> None:
        lanes = getattr(_STATE, "lanes", [])
        if lanes:
            lanes.pop()


# -- device-shard annotation --------------------------------------------------
#
# The distributed operators (``repro.distributed``) execute one table shard at
# a time on a simulated device.  While a shard scope is active every recorded
# op event carries its shard id and every traced graph node is stamped with a
# ``shard`` attribute — the per-device analogue of worker lanes: the cost
# models reconstruct per-device timelines (and charge interconnect transfers
# between them) from a single-threaded run.


def current_shard() -> "int | None":
    """The active device-shard id, or ``None`` outside any sharded region."""
    shards = getattr(_STATE, "shards", None)
    if not shards:
        return None
    return shards[-1]


class shard_scope:
    """Context manager marking ops executed inside it as per-shard work."""

    def __init__(self, shard: int):
        self.shard = shard

    def __enter__(self) -> "shard_scope":
        shards = getattr(_STATE, "shards", None)
        if shards is None:
            shards = []
            _STATE.shards = shards
        shards.append(self.shard)
        return self

    def __exit__(self, *exc_info) -> None:
        shards = getattr(_STATE, "shards", [])
        if shards:
            shards.pop()


@dataclasses.dataclass
class OpEvent:
    """One executed op."""

    op: str
    elapsed_s: float
    input_bytes: int
    output_bytes: int
    device: str
    timestamp_s: float
    scope: str = ""
    #: Simulated worker lane the op ran on (``None`` = serial region).
    lane: "int | None" = None
    #: Simulated device shard the op ran on (``None`` = host/unsharded).
    shard: "int | None" = None

    @property
    def total_bytes(self) -> int:
        return self.input_bytes + self.output_bytes


@dataclasses.dataclass
class OpSummary:
    """Aggregated statistics for one op name (or one scope)."""

    key: str
    calls: int = 0
    total_s: float = 0.0
    total_bytes: int = 0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.calls if self.calls else 0.0


class Profiler:
    """Collects :class:`OpEvent` records while active as a context manager."""

    def __init__(self, name: str = "profile"):
        self.name = name
        self.events: list[OpEvent] = []
        self._scopes: list[str] = []
        self._start = time.perf_counter()
        # Appends are guarded so a profiler propagated to worker threads (see
        # :func:`capture_scope`) collects every event instead of losing some
        # to a torn list append.
        self._record_lock = threading.Lock()

    # -- recording ---------------------------------------------------------

    def record(self, op: str, elapsed_s: float, input_bytes: int,
               output_bytes: int, device: Device) -> None:
        event = OpEvent(
            op=op,
            elapsed_s=elapsed_s,
            input_bytes=input_bytes,
            output_bytes=output_bytes,
            device=str(device),
            timestamp_s=time.perf_counter() - self._start,
            scope=self._scopes[-1] if self._scopes else "",
            lane=current_lane(),
            shard=current_shard(),
        )
        with self._record_lock:
            self.events.append(event)

    def push_scope(self, scope: str) -> None:
        """Enter a named scope (used to attribute ops to relational operators)."""
        self._scopes.append(scope)

    def pop_scope(self) -> None:
        if self._scopes:
            self._scopes.pop()

    class _ScopeGuard:
        def __init__(self, profiler: "Profiler", scope: str):
            self._profiler = profiler
            self._scope = scope

        def __enter__(self):
            self._profiler.push_scope(self._scope)
            return self

        def __exit__(self, *exc_info):
            self._profiler.pop_scope()

    def scope(self, name: str) -> "_ScopeGuard":
        return Profiler._ScopeGuard(self, name)

    # -- aggregation ---------------------------------------------------------

    def by_op(self) -> list[OpSummary]:
        """Aggregate events per op name, sorted by total time descending."""
        return self._aggregate(lambda e: e.op)

    def by_scope(self) -> list[OpSummary]:
        """Aggregate events per scope (relational operator), sorted by time."""
        return self._aggregate(lambda e: e.scope or "<unscoped>")

    def _aggregate(self, key_fn) -> list[OpSummary]:
        summaries: dict[str, OpSummary] = {}
        for event in self.events:
            key = key_fn(event)
            summary = summaries.setdefault(key, OpSummary(key))
            summary.calls += 1
            summary.total_s += event.elapsed_s
            summary.total_bytes += event.total_bytes
        return sorted(summaries.values(), key=lambda s: s.total_s, reverse=True)

    def total_time_s(self) -> float:
        return sum(e.elapsed_s for e in self.events)

    def total_bytes(self) -> int:
        return sum(e.total_bytes for e in self.events)

    def partition(self, transfer_ops: "set[str] | frozenset[str]"
                  ) -> tuple[list[OpEvent], list[OpEvent]]:
        """Split events into ``(transfer_events, kernel_events)``.

        Device cost models use this to charge host<->device copies against
        interconnect bandwidth and everything else as kernel launches.  With
        kernel fusion active, each ``fused_kernel`` event counts as a single
        launch — the property that makes launch-overhead accounting physical.
        """
        transfers: list[OpEvent] = []
        kernels: list[OpEvent] = []
        for event in self.events:
            (transfers if event.op in transfer_ops else kernels).append(event)
        return transfers, kernels

    # -- export --------------------------------------------------------------

    def to_chrome_trace(self) -> list[dict]:
        """Events in Chrome Trace Event format (complete events, microseconds)."""
        trace = []
        for event in self.events:
            trace.append({
                "name": event.op,
                "cat": event.scope or "op",
                "ph": "X",
                "ts": event.timestamp_s * 1e6,
                "dur": event.elapsed_s * 1e6,
                "pid": 0,
                "tid": 0 if event.device == "cpu" else 1,
                "args": {
                    "device": event.device,
                    "input_bytes": event.input_bytes,
                    "output_bytes": event.output_bytes,
                },
            })
        return trace

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as f:
            json.dump({"traceEvents": self.to_chrome_trace()}, f)

    # -- context management ----------------------------------------------

    def __enter__(self) -> "Profiler":
        stack = getattr(_STATE, "stack", None)
        if stack is None:
            stack = []
            _STATE.stack = stack
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        # Remove this profiler from the current thread's activation stack
        # wherever it sits: an unbalanced inner enter/exit (or an exception
        # unwinding through several activations) must never leave a dead
        # profiler active on a long-lived serving worker thread.
        stack = getattr(_STATE, "stack", [])
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] is self:
                del stack[index]
                break


def merge_profiles(profiles: Iterable[Profiler], name: str = "merged") -> Profiler:
    """Combine several profiles into one (used by multi-run benchmarks)."""
    merged = Profiler(name)
    for profile in profiles:
        merged.events.extend(profile.events)
    return merged
