"""The :class:`Tensor` type of the mini Tensor Computation Runtime (TCR).

A ``Tensor`` is a thin, immutable-by-convention wrapper around a numpy array
plus a :class:`~repro.tensor.device.Device`.  All arithmetic goes through the
functional op layer (``repro.tensor.ops``) so that every operation is visible
to the tracer and the profiler — this is what allows TQP to capture whole
queries as tensor programs, exactly as the paper does with PyTorch.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.errors import DeviceError, TensorRuntimeError
from repro.tensor import dtype as dtypes
from repro.tensor.device import CPU, Device


class Tensor:
    """A dense n-dimensional array on a device.

    Construct tensors with :func:`repro.tensor.ops.tensor` (or the module-level
    re-export ``repro.tensor.tensor``) rather than calling this class directly.
    """

    __slots__ = ("_data", "_device", "trace_value")

    def __init__(self, data: np.ndarray, device: Device = CPU):
        if not isinstance(data, np.ndarray):
            raise TensorRuntimeError("Tensor expects a numpy array; use ops.tensor()")
        self._data = data
        self._device = device
        # Symbolic value assigned by the tracer while a trace is being recorded.
        self.trace_value = None

    # -- basic properties -------------------------------------------------

    @property
    def data(self) -> np.ndarray:
        """The underlying numpy array (do not mutate)."""
        return self._data

    @property
    def device(self) -> Device:
        return self._device

    @property
    def dtype(self) -> dtypes.DType:
        return dtypes.from_numpy(self._data.dtype)

    @property
    def shape(self) -> tuple[int, ...]:
        return self._data.shape

    @property
    def ndim(self) -> int:
        return self._data.ndim

    @property
    def size(self) -> int:
        return int(self._data.size)

    @property
    def nbytes(self) -> int:
        return int(self._data.nbytes)

    def __len__(self) -> int:
        if self.ndim == 0:
            raise TensorRuntimeError("len() of a 0-d tensor")
        return self.shape[0]

    # -- conversion --------------------------------------------------------

    def numpy(self) -> np.ndarray:
        """Return the tensor contents as a numpy array (always allowed).

        For simulated devices this is the real data the kernels produced; only
        execution *time* is simulated, never values.
        """
        return self._data

    def item(self) -> Any:
        """Return the value of a single-element tensor as a Python scalar."""
        if self.size != 1:
            raise TensorRuntimeError(f"item() requires a single element, got shape {self.shape}")
        return self._data.reshape(()).item()

    def tolist(self) -> list:
        return self._data.tolist()

    def to(self, device: Device | str) -> "Tensor":
        """Move the tensor to another device (recorded as a transfer)."""
        from repro.tensor import ops as _ops

        return _ops.to_device(self, device)

    def astype(self, dt: dtypes.DType | str) -> "Tensor":
        from repro.tensor import ops as _ops

        return _ops.cast(self, dt)

    # -- operator overloads (all dispatch through ops) ---------------------

    def _binary(self, name: str, other: Any, reflected: bool = False) -> "Tensor":
        from repro.tensor import ops as _ops

        fn = getattr(_ops, name)
        if reflected:
            return fn(other, self)
        return fn(self, other)

    def __add__(self, other):
        return self._binary("add", other)

    def __radd__(self, other):
        return self._binary("add", other, reflected=True)

    def __sub__(self, other):
        return self._binary("sub", other)

    def __rsub__(self, other):
        return self._binary("sub", other, reflected=True)

    def __mul__(self, other):
        return self._binary("mul", other)

    def __rmul__(self, other):
        return self._binary("mul", other, reflected=True)

    def __truediv__(self, other):
        return self._binary("div", other)

    def __rtruediv__(self, other):
        return self._binary("div", other, reflected=True)

    def __floordiv__(self, other):
        return self._binary("floordiv", other)

    def __mod__(self, other):
        return self._binary("mod", other)

    def __pow__(self, other):
        return self._binary("pow", other)

    def __neg__(self):
        from repro.tensor import ops as _ops

        return _ops.neg(self)

    def __invert__(self):
        from repro.tensor import ops as _ops

        return _ops.logical_not(self)

    def __and__(self, other):
        return self._binary("logical_and", other)

    def __or__(self, other):
        return self._binary("logical_or", other)

    def __eq__(self, other):  # type: ignore[override]
        return self._binary("eq", other)

    def __ne__(self, other):  # type: ignore[override]
        return self._binary("ne", other)

    def __lt__(self, other):
        return self._binary("lt", other)

    def __le__(self, other):
        return self._binary("le", other)

    def __gt__(self, other):
        return self._binary("gt", other)

    def __ge__(self, other):
        return self._binary("ge", other)

    def __matmul__(self, other):
        return self._binary("matmul", other)

    def __hash__(self) -> int:
        # Identity hashing: __eq__ is elementwise, so tensors are hashable only
        # by identity (mirrors PyTorch semantics).
        return id(self)

    def __getitem__(self, key):
        from repro.tensor import ops as _ops

        if isinstance(key, Tensor):
            if key.dtype is dtypes.bool_:
                return _ops.boolean_mask(self, key)
            return _ops.take(self, key)
        return _ops.slice_(self, key)

    def __repr__(self) -> str:
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype.name}, "
            f"device={self._device}, data={np.array2string(self._data, threshold=8)})"
        )


def as_tensor(value: Any, device: Device | str | None = None) -> Tensor:
    """Coerce ``value`` (Tensor, numpy array, scalar, sequence) to a Tensor."""
    from repro.tensor import ops as _ops

    if isinstance(value, Tensor):
        return value
    return _ops.tensor(value, device=device)


def same_device(tensors: Iterable[Tensor]) -> Device:
    """Return the common device of ``tensors``, raising on a mismatch."""
    device: Device | None = None
    for t in tensors:
        if device is None:
            device = t.device
        elif t.device != device:
            raise DeviceError(
                f"tensors are on different devices: {device} vs {t.device}"
            )
    return device if device is not None else CPU


def broadcast_scalars(values: Sequence[Any], device: Device) -> list[Tensor]:
    """Convert python scalars in ``values`` to 0-d tensors on ``device``."""
    from repro.tensor import ops as _ops

    out: list[Tensor] = []
    for value in values:
        if isinstance(value, Tensor):
            out.append(value)
        else:
            out.append(_ops.tensor(value, device=device))
    return out
