"""Device abstraction for the mini tensor runtime.

Three device kinds exist:

* ``cpu``  — real execution with numpy kernels.
* ``cuda`` — *simulated* GPU: kernels still run with numpy (so results are
  always real), but executors report time from an analytic cost model
  (see ``repro.backends.gpu_sim``).
* ``wasm`` — *simulated* browser/WASM target used by the ONNX-like backend.

Device strings follow the PyTorch convention (``"cuda"``, ``"cuda:1"``).
"""

from __future__ import annotations

import dataclasses

from repro.errors import DeviceError

_VALID_KINDS = ("cpu", "cuda", "wasm")


@dataclasses.dataclass(frozen=True)
class Device:
    """A compute device identified by kind and index."""

    kind: str
    index: int = 0

    def __post_init__(self) -> None:
        if self.kind not in _VALID_KINDS:
            raise DeviceError(
                f"unknown device kind {self.kind!r}; expected one of {_VALID_KINDS}"
            )
        if self.index < 0:
            raise DeviceError("device index must be non-negative")

    @property
    def is_cpu(self) -> bool:
        return self.kind == "cpu"

    @property
    def is_simulated(self) -> bool:
        """True when execution time on this device is produced by a cost model."""
        return self.kind in ("cuda", "wasm")

    def __str__(self) -> str:
        if self.kind == "cpu" and self.index == 0:
            return "cpu"
        return f"{self.kind}:{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Device({str(self)!r})"


def parse_device(spec: "Device | str | None") -> Device:
    """Parse a device specification.

    Accepts an existing :class:`Device`, a string such as ``"cpu"`` or
    ``"cuda:0"``, or ``None`` (meaning the default CPU device).
    """
    if spec is None:
        return CPU
    if isinstance(spec, Device):
        return spec
    if not isinstance(spec, str):
        raise DeviceError(f"cannot interpret {spec!r} as a device")
    text = spec.strip().lower()
    if ":" in text:
        kind, _, index_text = text.partition(":")
        try:
            index = int(index_text)
        except ValueError:
            raise DeviceError(f"invalid device index in {spec!r}") from None
        return Device(kind, index)
    return Device(text, 0)


CPU = Device("cpu", 0)
CUDA = Device("cuda", 0)
WASM = Device("wasm", 0)
