"""Shared op-node semantics: one implementation per op, two executors.

Traced graphs are executed by two backends — the node-by-node
:class:`~repro.tensor.interpreter.GraphInterpreter` and the codegen executor
(:mod:`repro.tensor.codegen`), which lowers a whole graph into one generated
Python function.  Both MUST agree exactly on what each node does: the kernel
that runs, how many outputs it produces, and the special-case rules
(``to_device`` forwarding, worker-lane stamping, profile-event content) that
the simulated device cost models depend on.

This module is the single place those semantics live.  The executors consume
it; neither implements an op of its own — ``tools/lint_op_registry.py``
enforces that invariant in CI.  The kernels themselves are registered once in
:data:`repro.tensor.ops.OP_REGISTRY` (including the shape-polymorphic ops used
by prepared-statement replay and the multi-part encoded-input layout, which
need no special handling here: their size polymorphism lives inside the
kernels).
"""

from __future__ import annotations

from repro.errors import TensorRuntimeError
from repro.tensor import ops
from repro.tensor.device import Device, parse_device

#: The one op whose node execution is not a plain kernel call: a traced
#: transfer whose input already lives on the target device is forwarded
#: without dispatching (and without a profile event), so cost models never
#: charge the same PCIe move twice.
TRANSFER_OP = "to_device"


def is_registered(op: str) -> bool:
    """Whether ``op`` has a kernel in the shared registry."""
    return ops.op_exists(op)


def resolve(op: str) -> ops.OpDef:
    """The registry entry for ``op`` (kernel, output count, elementwise hint).

    Raises :class:`~repro.errors.TensorRuntimeError` for unknown ops — the
    same error either executor would surface at dispatch time.
    """
    opdef = ops.OP_REGISTRY.get(op)
    if opdef is None:
        raise TensorRuntimeError(f"unknown op: {op!r}")
    return opdef


def kernel(op: str):
    """The raw array kernel ``(arrays, attrs) -> list[np.ndarray]`` for ``op``."""
    return resolve(op).kernel


def inline_np_fn(op: str):
    """The raw numpy callable behind ``op``, or ``None``.

    Only set (in the registry, at registration time) for ops whose kernel is
    exactly ``[np_fn(*arrays)]`` with attrs ignored — for those the emitter
    may call the numpy function directly instead of the kernel wrapper, which
    is observationally identical and skips a tuple/list/index per node.
    """
    return resolve(op).np_fn


def specialized_fn(op: str, attrs: dict):
    """``fn(*arrays) -> np.ndarray`` with ``attrs`` bound, or ``None``.

    Registry ops may provide a ``specialize`` factory (see
    :class:`~repro.tensor.ops.OpDef`) that hoists per-call attr handling —
    decoding a slice key, reading an axis — to compile time.  Only the
    codegen executor can use it (node attrs are static there); the
    interpreter keeps dispatching the reference kernel.
    """
    factory = resolve(op).specialize
    return None if factory is None else factory(attrs)


def transfer_target(attrs: dict) -> Device:
    """The destination device of a traced ``to_device`` node."""
    return parse_device(attrs.get("device"))


def transfer_is_noop(source: Device, target: Device) -> bool:
    """Whether a traced transfer from ``source`` to ``target`` is forwarded.

    Shared by both executors so the profile-event streams (and therefore the
    simulated transfer accounting) stay identical between interpreted replay
    and compiled execution.
    """
    return source == target


def node_lane(attrs: dict) -> "int | None":
    """The worker lane a node was traced on (``None`` = serial region).

    The interpreter re-enters the lane via
    :class:`~repro.tensor.profiler.lane_scope` while dispatching; the codegen
    executor stamps the same lane straight onto the events it records.  Both
    roads lead to identical per-lane timelines for the cost models.
    """
    return attrs.get("lane")


def node_shard(attrs: dict) -> "int | None":
    """The device shard a node was traced on (``None`` = host/unsharded).

    Exactly parallel to :func:`node_lane`: the interpreter re-enters the shard
    via :class:`~repro.tensor.profiler.shard_scope`, the codegen executor
    stamps it onto its events, and the device cost models use it to overlap
    per-shard compute across simulated devices.
    """
    return attrs.get("shard")


#: Zero-copy identity ops whose traced nodes carry the interconnect payload
#: accounting of distributed plans (see ``repro.tensor.ops``).  Cost models
#: charge their ``output_bytes`` against an interconnect tier (NVLink-style
#: for shard<->shard exchange/broadcast, PCIe-style for the final gather to
#: the host) and exclude their pass-through elapsed time from kernel cost.
EXCHANGE_OPS = frozenset({"shard_exchange", "shard_broadcast", "shard_gather"})

#: The exchange op that crosses the host boundary (shard results returning
#: from a device): cost models charge it on the host-link tier (PCIe-style)
#: rather than the peer-to-peer tier the other exchanges ride.
GATHER_OP = "shard_gather"


#: The fused-elementwise op: its attrs carry a local-SSA sub-program (see
#: ``passes.fuse_elementwise``).  The interpreter dispatches it as one kernel
#: that loops the steps; the codegen executor unrolls the same steps into
#: straight-line calls of the same registry kernels.  Either way it costs one
#: profile event / one simulated launch.
FUSED_OP = "fused_kernel"


def fused_steps(attrs: dict) -> tuple[list[dict], list[int]]:
    """The ``(steps, output slots)`` of a fused node's local-SSA program.

    Slot numbering matches the fused kernel: slots ``0..n_inputs-1`` are the
    node's inputs, step *j* defines slot ``n_inputs + j``.
    """
    return list(attrs["steps"]), list(attrs["outputs"])


def op_unsupported_reason(op: str) -> "str | None":
    """Why a node op cannot be executed, or ``None`` when it can.

    Registry membership is the only per-op requirement either executor has:
    the interpreter dispatches by name, the emitter closes over the same
    kernel.  Anything in the registry is executable by both — the property
    the CI lint asserts.
    """
    if not is_registered(op):
        return f"op {op!r} is not in the op registry"
    return None
