"""Codegen executor: lower a traced graph to one generated Python function.

The interpreter (:mod:`repro.tensor.interpreter`) pays per-node dispatch on
every replay — environment dict lookups, registry lookups, tensor wrapping —
which is exactly the overhead the paper's TorchScript/ONNX compilation step
exists to remove.  This module removes it for real: a traced, optimized graph
is lowered through the ONNX-like portable structure
(:func:`repro.tensor.onnxlike.export_ir`, the stable IR) into the source of a
single Python function whose locals are the graph's SSA values, whose
constants and kernels are closed over, and which is compiled once with
``compile()``/``exec``.  Executing a cached plan is then one call with zero
graph-walking.

Two function bodies are generated from the same IR:

* a **fast** body — straight-line kernel calls, used when no profiler is
  active (the wall-clock serving path), and
* a **profiled** body — the same calls bracketed with ``perf_counter`` and an
  inline :class:`~repro.tensor.profiler.OpEvent` per node, emitting byte
  counts, devices and worker lanes *identical* to interpreted replay, so the
  simulated GPU/WASM cost models and the lane accounting cannot tell the two
  executors apart.

Both bodies take their per-node semantics from the shared registry
(:mod:`repro.tensor.op_semantics`); no op is implemented here (enforced by
``tools/lint_op_registry.py``).

Fallback rules — :func:`unsupported_reason` returns why a graph must stay on
the interpreter:

* the backend models a per-node dispatch overhead (the ONNX/WASM
  interpreter-loop simulation): compiled execution would not burn it, so the
  cost accounting would change;
* a node's op is not in the shared registry (e.g. a portable model produced
  by a newer runtime);
* a node's attributes do not survive the portable IR (not JSON-stable).

Set the ``REPRO_CODEGEN_DUMP`` environment variable to a directory to write
every generated source file there for debugging (or to ``-`` to print it to
stderr); ``CompiledGraphProgram.source`` always holds the text.
"""

from __future__ import annotations

import json
import linecache
import os
import sys
import time
from typing import Sequence

import numpy as np

from repro.errors import CodegenError, GraphError
from repro.tensor import onnxlike, op_semantics
from repro.tensor.device import Device, parse_device
from repro.tensor.graph import Graph
from repro.tensor.profiler import OpEvent, current_profiler
from repro.tensor.tensor import Tensor

#: Environment variable controlling generated-source dumps.
DUMP_ENV_VAR = "REPRO_CODEGEN_DUMP"

_counter = 0


def _attrs_are_portable(attrs: dict) -> bool:
    """Whether node attributes survive the JSON-stable portable IR.

    Numpy scalars are accepted (they serialize to plain numbers); anything
    ``json`` cannot express falls back to the interpreter.
    """
    def default(value):
        if isinstance(value, (np.integer, np.floating, np.bool_)):
            return value.item()
        raise TypeError(f"not portable: {type(value).__name__}")

    try:
        json.dumps(attrs, default=default)
    except (TypeError, ValueError):
        return False
    return True


def unsupported_reason(graph: Graph, per_node_overhead_s: float = 0.0
                       ) -> "str | None":
    """Why ``graph`` cannot be compiled, or ``None`` when it can."""
    if per_node_overhead_s:
        return ("backend models a per-node dispatch overhead "
                "(interpreter-loop simulation); generated code would not "
                "burn it, changing the cost accounting")
    for node in graph.nodes:
        reason = op_semantics.op_unsupported_reason(node.op)
        if reason is not None:
            return reason
        if node.op == op_semantics.FUSED_OP:
            steps, _ = op_semantics.fused_steps(node.attrs)
            for step in steps:
                reason = op_semantics.op_unsupported_reason(step["op"])
                if reason is not None:
                    return f"fused step: {reason}"
        if not _attrs_are_portable(node.attrs):
            return (f"node op {node.op!r} carries attributes that do not "
                    f"survive the portable IR")
    return None


class _Emitter:
    """Generates the two function bodies from the portable IR."""

    def __init__(self, model: dict):
        self.model = model
        #: Closed-over namespace for the generated module.
        self.namespace: dict = {
            "_asarray": np.asarray,
            "_pc": time.perf_counter,
            "_EV": OpEvent,
        }
        #: Static device tag per value id: ``None`` means "the run device"
        #: (only ``to_device`` outputs ever differ, see the emit loop).
        self.value_device: dict[int, "Device | None"] = {}
        self._input_ids = [item["id"] for item in model["inputs"]]
        self._init_ids = sorted(model["initializers"])

    def _ref(self, vid: int) -> str:
        return f"_c{vid}" if vid in self.model["initializers"] else f"v{vid}"

    def _emit_preamble(self, lines: list[str]) -> None:
        if self._input_ids:
            unpack = ", ".join(f"v{vid}" for vid in self._input_ids)
            lines.append(f"    ({unpack},) = args")

    def _emit_node(self, lines: list[str], index: int, node: dict,
                   profiled: bool) -> None:
        op = node["op"]
        attrs = node.get("attrs") or {}
        in_refs = [self._ref(vid) for vid in node["inputs"]]
        out_ids = node["outputs"]

        if op == op_semantics.TRANSFER_OP:
            self._emit_transfer(lines, index, node, in_refs, profiled)
            return
        for vid in out_ids:
            self.value_device[vid] = None

        unpack = [f"v{vid}" for vid in out_ids]
        if op == op_semantics.FUSED_OP:
            # Unroll the fused local-SSA program into straight-line calls of
            # the step kernels: one event / one simulated launch for the
            # whole chain, zero per-step dispatch at runtime.
            body, results = self._unrolled_fused(index, node, in_refs, attrs)
        elif len(out_ids) == 1 and (
                (np_fn := op_semantics.inline_np_fn(op)) is not None
                or (np_fn := op_semantics.specialized_fn(op, attrs)) is not None):
            # Registry-provided direct callable: the shared np_fn, or a
            # per-node specialization with the static attrs bound in.
            fn_name = (f"_u_{op}" if op_semantics.inline_np_fn(op) is not None
                       else f"_s{index}")
            self.namespace[fn_name] = np_fn
            call = f"{fn_name}({', '.join(in_refs)})"
            if not profiled:
                lines.append(f"    {unpack[0]} = _asarray({call})")
                return
            body = [f"_r = {call}"]
            results = ["_r"]
        else:
            kernel_name = f"_k_{op}"
            self.namespace[kernel_name] = op_semantics.kernel(op)
            attrs_name = f"_a{index}"
            self.namespace[attrs_name] = attrs
            call = (f"{kernel_name}(({', '.join(in_refs)}"
                    f"{',' if in_refs else ''}), {attrs_name})")
            if len(unpack) == 1 and not profiled:
                lines.append(f"    {unpack[0]} = _asarray({call}[0])")
                return
            body = [f"_r = {call}"]
            results = [f"_r[{i}]" for i in range(len(unpack))]
        if not profiled:
            for stmt in body:
                lines.append(f"    {stmt}")
            for name, res in zip(unpack, results):
                lines.append(f"    {name} = _asarray({res})")
            return
        in_bytes = " + ".join(f"{ref}.nbytes" for ref in in_refs) or "0"
        out_bytes = " + ".join(f"{name}.nbytes" for name in unpack)
        lane = op_semantics.node_lane(attrs)
        shard = op_semantics.node_shard(attrs)
        lines.append("    _t = _pc()")
        for stmt in body:
            lines.append(f"    {stmt}")
        lines.append("    _el = _pc() - _t")
        for name, res in zip(unpack, results):
            lines.append(f"    {name} = _asarray({res})")
        lines.append(
            f"    _events.append(_EV({op!r}, _el, {in_bytes}, {out_bytes}, "
            f"dev_str, _pc() - _t0, _scope(), {lane!r}, {shard!r}))")

    def _unrolled_fused(self, index: int, node: dict, in_refs: list[str],
                        attrs: dict) -> tuple[list[str], list[str]]:
        """Statements and result expressions for an unrolled fused node."""
        steps, out_slots = op_semantics.fused_steps(attrs)
        n_inputs = len(in_refs)

        def slot_ref(slot: int) -> str:
            return in_refs[slot] if slot < n_inputs else f"_f{index}_{slot - n_inputs}"

        body: list[str] = []
        for j, step in enumerate(steps):
            step_refs = ", ".join(slot_ref(s) for s in step["inputs"])
            np_fn = op_semantics.inline_np_fn(step["op"])
            if np_fn is not None:
                fn_name = f"_u_{step['op']}"
                self.namespace[fn_name] = np_fn
                body.append(f"_f{index}_{j} = {fn_name}({step_refs})")
                continue
            kernel_name = f"_k_{step['op']}"
            self.namespace[kernel_name] = op_semantics.kernel(step["op"])
            attrs_name = f"_a{index}_{j}"
            self.namespace[attrs_name] = step.get("attrs") or {}
            body.append(f"_f{index}_{j} = {kernel_name}(({step_refs}"
                        f"{',' if step['inputs'] else ''}), {attrs_name})[0]")
        return body, [slot_ref(slot) for slot in out_slots]

    def _emit_transfer(self, lines: list[str], index: int, node: dict,
                       in_refs: list[str], profiled: bool) -> None:
        """``to_device`` nodes: identity data-wise, transfer-event-wise not.

        The shared semantics (:func:`op_semantics.transfer_is_noop`) forward
        the tensor without an event when its device already matches the
        target.  Source devices are statically known relative to the run
        device, so the no-op test compiles to nothing, a constant, or a
        single string comparison.
        """
        attrs = node.get("attrs") or {}
        target = op_semantics.transfer_target(attrs)
        src_vid = node["inputs"][0]
        out_vid = node["outputs"][0]
        src_dev = self.value_device.get(src_vid)
        self.value_device[out_vid] = target
        in_ref, out_ref = in_refs[0], f"v{out_vid}"
        if not profiled:
            lines.append(f"    {out_ref} = {in_ref}")
            return
        lane = op_semantics.node_lane(attrs)
        shard = op_semantics.node_shard(attrs)
        event = (f"_events.append(_EV('to_device', _pc() - _t, {in_ref}.nbytes, "
                 f"{out_ref}.nbytes, {str(target)!r}, _pc() - _t0, _scope(), "
                 f"{lane!r}, {shard!r}))")
        if src_dev is not None and op_semantics.transfer_is_noop(src_dev, target):
            lines.append(f"    {out_ref} = {in_ref}")
            return
        indent = "    "
        if src_dev is None:
            # Source sits on the run device: no-op exactly when the run
            # device is already the target.
            lines.append(f"    if dev_str != {str(target)!r}:")
            indent = "        "
        lines.append(f"{indent}_t = _pc()")
        lines.append(f"{indent}{out_ref} = {in_ref}")
        lines.append(f"{indent}{event}")
        if src_dev is None:
            lines.append("    else:")
            lines.append(f"        {out_ref} = {in_ref}")

    def emit(self, profiled: bool) -> list[str]:
        name = "run_profiled" if profiled else "run"
        args = "args, dev_str, prof" if profiled else "args, dev_str"
        lines = [f"def {name}({args}):"]
        if profiled:
            lines.append("    _events = prof.events")
            lines.append("    _t0 = prof._start")
            lines.append(
                "    _scope = lambda: prof._scopes[-1] if prof._scopes else ''")
        self._emit_preamble(lines)
        self.value_device = {vid: None for vid in self._input_ids}
        self.value_device.update({vid: None for vid in self._init_ids})
        for index, node in enumerate(self.model["nodes"]):
            self._emit_node(lines, index, node, profiled)
        outs = ", ".join(self._ref(vid) for vid in self.model["outputs"])
        lines.append(f"    return [{outs}]")
        lines.append("")
        return lines


class CompiledGraphProgram:
    """A graph lowered to generated code; call :meth:`run` to execute it."""

    def __init__(self, graph: Graph, source: str, fast_fn, profiled_fn,
                 output_devices: "list[Device | None]"):
        self.graph = graph
        #: The generated Python source (for debugging / the dump option).
        self.source = source
        self._fast = fast_fn
        self._profiled = profiled_fn
        #: Per-output static device tag (``None`` = the run device).
        self._output_devices = output_devices

    def run(self, inputs: Sequence[Tensor], device: Device | str | None = None
            ) -> list[Tensor]:
        """Execute the generated function; returns one tensor per output.

        Input handling matches the interpreter exactly: with a ``device``
        every input is moved there first (recording the same transfer events
        a replay would), without one the inputs' own (common) device is used.
        """
        graph_inputs = self.graph.inputs
        if len(inputs) != len(graph_inputs):
            raise GraphError(
                f"graph expects {len(graph_inputs)} inputs, got {len(inputs)}"
            )
        if device is not None:
            dev = parse_device(device)
            moved = [t if t.device == dev else t.to(dev) for t in inputs]
        else:
            dev = inputs[0].device if inputs else parse_device(None)
            moved = list(inputs)
        arrays = [t.data for t in moved]
        prof = current_profiler()
        dev_str = str(dev)
        if prof is None:
            out_arrays = self._fast(arrays, dev_str)
        else:
            out_arrays = self._profiled(arrays, dev_str, prof)
        return [Tensor(array, dev if tag is None else tag)
                for array, tag in zip(out_arrays, self._output_devices)]

    def serving_fn(self, device: Device | str):
        """An unprofiled single-call entry point for serving loops.

        Returns ``fn(arrays) -> list[Tensor]`` taking the flat raw input
        arrays, already resident on ``device``; each call is exactly one
        invocation of the generated function.  Callers that want profiling
        (or that still need input transfers accounted) use :meth:`run`.
        """
        dev = parse_device(device)
        dev_str = str(dev)
        fast = self._fast
        tags = [dev if tag is None else tag for tag in self._output_devices]

        def serve(arrays: "list[np.ndarray]") -> list[Tensor]:
            return [Tensor(array, tag)
                    for array, tag in zip(fast(arrays, dev_str), tags)]

        return serve


def _dump_source(name: str, source: str) -> None:
    target = os.environ.get(DUMP_ENV_VAR)
    if not target:
        return
    if target == "-":
        sys.stderr.write(source)
        return
    os.makedirs(target, exist_ok=True)
    path = os.path.join(target, f"{name}.py")
    with open(path, "w", encoding="utf-8") as f:
        f.write(source)


def compile_graph(graph: Graph, per_node_overhead_s: float = 0.0
                  ) -> CompiledGraphProgram:
    """Lower ``graph`` to a :class:`CompiledGraphProgram`.

    Raises :class:`~repro.errors.CodegenError` naming the unsupported
    construct when the graph must stay on the interpreter.
    """
    global _counter
    reason = unsupported_reason(graph, per_node_overhead_s)
    if reason is not None:
        raise CodegenError(f"cannot compile graph {graph.name!r}: {reason}")
    model = onnxlike.export_ir(graph, encode_initializers=False)
    emitter = _Emitter(model)
    lines = emitter.emit(profiled=False)
    lines += emitter.emit(profiled=True)
    source = "\n".join(lines)
    for vid, array in model["initializers"].items():
        emitter.namespace[f"_c{vid}"] = array

    _counter += 1
    filename = f"<tqp-codegen:{graph.name}:{_counter}>"
    namespace = dict(emitter.namespace)
    code = compile(source, filename, "exec")
    exec(code, namespace)
    # Make the generated source visible to tracebacks and pdb.
    linecache.cache[filename] = (len(source), None,
                                 source.splitlines(True), filename)
    _dump_source(f"{graph.name}_{_counter}", source)
    output_devices = [emitter.value_device.get(vid)
                      for vid in model["outputs"]]
    return CompiledGraphProgram(graph, source, namespace["run"],
                                namespace["run_profiled"], output_devices)
