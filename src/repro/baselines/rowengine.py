"""Row-at-a-time baseline engine (the "Spark CPU" comparator).

The paper compares TQP against Apache Spark running on the CPU.  Spark itself
is not available offline, so this module provides the comparator the
benchmarks need: an interpreted, row-oriented engine that executes the *same*
physical plans the frontend hands to TQP.  Rows are Python dicts, expressions
are evaluated recursively per row, joins are classic hash joins over Python
dictionaries — i.e. a faithful stand-in for an interpreted row-at-a-time
executor, which is exactly the performance regime the paper's Figure 1
contrasts with tensor execution.

Because both engines consume the same physical plans, the row engine doubles
as the correctness oracle for the TPC-H test-suite.
"""

from __future__ import annotations

import math
import re
from typing import Any, Callable, Iterable, Optional

import numpy as np

from repro.core.columnar import LogicalType
from repro.dataframe import DataFrame
from repro.errors import ExecutionError, UnsupportedOperationError
from repro.frontend import ast
from repro.frontend import physical as phys
from repro.frontend.logical import AggregateCall

Row = dict[str, Any]

_NS_PER_DAY = 86_400_000_000_000


def _like_to_regex(pattern: str) -> re.Pattern:
    return re.compile("^" + ".*".join(re.escape(p) for p in pattern.split("%")) + "$")


class RowExpressionEvaluator:
    """Recursive per-row expression interpreter."""

    def __init__(self, engine: "RowEngine"):
        self.engine = engine
        self._like_cache: dict[str, re.Pattern] = {}

    def evaluate(self, expr: ast.Expr, row: Row) -> Any:
        if isinstance(expr, ast.ColumnRef):
            return row[expr.resolved or expr.display]
        if isinstance(expr, ast.Literal):
            return expr.value
        if isinstance(expr, ast.ParameterExpr):
            if expr.name not in self.engine.params:
                raise ExecutionError(
                    f"no value bound for parameter :{expr.name}")
            return self.engine.params[expr.name]
        if isinstance(expr, ast.BinaryOp):
            return self._binary(expr, row)
        if isinstance(expr, ast.UnaryOp):
            value = self.evaluate(expr.operand, row)
            if expr.op == "not":
                return (not value) if value is not None else None
            return -value if value is not None else None
        if isinstance(expr, ast.CaseWhen):
            for condition, result in expr.whens:
                if self.evaluate(condition, row):
                    return self.evaluate(result, row)
            if expr.else_value is not None:
                return self.evaluate(expr.else_value, row)
            return None  # SQL: CASE with no matching branch is NULL
        if isinstance(expr, ast.Cast):
            value = self.evaluate(expr.operand, row)
            if value is None:
                return None
            if expr.otype == LogicalType.INT:
                return int(value)
            if expr.otype == LogicalType.FLOAT:
                return float(value)
            return value
        if isinstance(expr, ast.LikeExpr):
            value = self.evaluate(expr.operand, row)
            if value is None:
                return False
            pattern = self._like_cache.setdefault(expr.pattern,
                                                  _like_to_regex(expr.pattern))
            matched = bool(pattern.match(value))
            return not matched if expr.negated else matched
        if isinstance(expr, ast.Between):
            value = self.evaluate(expr.operand, row)
            low = self.evaluate(expr.low, row)
            high = self.evaluate(expr.high, row)
            if value is None:
                return False
            result = low <= value <= high
            return not result if expr.negated else result
        if isinstance(expr, ast.InList):
            value = self.evaluate(expr.operand, row)
            items = [self.evaluate(item, row) for item in expr.items]
            result = value in items
            return not result if expr.negated else result
        if isinstance(expr, ast.InSubquery):
            value = self.evaluate(expr.operand, row)
            values = self.engine.subquery_column(expr.subplan)
            result = value in values
            return not result if expr.negated else result
        if isinstance(expr, ast.ExistsSubquery):
            rows = self.engine.subquery_rows(expr.subplan)
            result = len(rows) > 0
            return not result if expr.negated else result
        if isinstance(expr, ast.ScalarSubquery):
            return self.engine.subquery_scalar(expr.subplan)
        if isinstance(expr, ast.ExtractExpr):
            value = self.evaluate(expr.operand, row)
            date = np.datetime64(int(value), "ns").astype("datetime64[D]")
            text = str(date)
            return {"year": int(text[0:4]), "month": int(text[5:7]),
                    "day": int(text[8:10])}[expr.field]
        if isinstance(expr, ast.SubstringExpr):
            value = self.evaluate(expr.operand, row)
            start = int(self.evaluate(expr.start, row)) - 1
            if expr.length is None:
                return value[start:]
            return value[start:start + int(self.evaluate(expr.length, row))]
        if isinstance(expr, ast.IsNull):
            value = self.evaluate(expr.operand, row)
            result = value is None
            return not result if expr.negated else result
        if isinstance(expr, ast.PredictExpr):
            model = self.engine.models.get(expr.model_name)
            if model is None:
                raise ExecutionError(f"unknown model {expr.model_name!r}")
            args = [self.evaluate(arg, row) for arg in expr.args]
            return model(args)
        if isinstance(expr, ast.FuncCall):
            return self._function(expr, row)
        raise UnsupportedOperationError(
            f"row engine cannot evaluate {type(expr).__name__}"
        )

    def _binary(self, expr: ast.BinaryOp, row: Row) -> Any:
        op = expr.op
        if op == "and":
            return bool(self.evaluate(expr.left, row)) and bool(
                self.evaluate(expr.right, row))
        if op == "or":
            return bool(self.evaluate(expr.left, row)) or bool(
                self.evaluate(expr.right, row))
        left = self.evaluate(expr.left, row)
        right = self.evaluate(expr.right, row)
        if left is None or right is None:
            return False if op in ("=", "<>", "<", "<=", ">", ">=") else None
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right
        if op == "<=":
            return left <= right
        if op == ">":
            return left > right
        if op == ">=":
            return left >= right
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            return left / right
        if op == "%":
            return left % right
        raise UnsupportedOperationError(f"row engine: unsupported operator {op!r}")

    def _function(self, expr: ast.FuncCall, row: Row) -> Any:
        name = expr.name.lower()
        args = [self.evaluate(arg, row) for arg in expr.args]
        if name == "abs":
            return abs(args[0])
        if name == "round":
            return round(args[0])
        if name == "sqrt":
            return math.sqrt(args[0])
        if name == "length":
            return len(args[0])
        if name == "coalesce":
            return next((arg for arg in args if arg is not None), None)
        raise UnsupportedOperationError(f"row engine: unsupported function {name!r}")


class RowEngine:
    """Executes frontend physical plans one row at a time."""

    def __init__(self, dataframes: dict[str, DataFrame],
                 models: Optional[dict[str, Callable]] = None,
                 params: Optional[dict[str, Any]] = None):
        self.dataframes = {name.lower(): frame for name, frame in dataframes.items()}
        self.models = models or {}
        #: Bound parameter values (normalized Python scalars, see
        #: ``repro.core.parameters.bind_parameters``) for parameterized plans.
        self.params = params or {}
        self.evaluator = RowExpressionEvaluator(self)
        self._subquery_cache: dict[int, list[Row]] = {}

    # -- public API -----------------------------------------------------------

    def execute(self, plan: phys.PhysicalNode) -> list[Row]:
        return list(self._execute(plan))

    def execute_to_dataframe(self, plan: phys.PhysicalNode) -> DataFrame:
        rows = self.execute(plan)
        names = [f.name for f in plan.schema()]
        data: dict[str, list] = {name: [] for name in names}
        for row in rows:
            for name in names:
                data[name].append(row[name])
        columns = {}
        for field in plan.schema():
            values = data[field.name]
            columns[field.name] = self._column_array(values, field.ltype)
        return DataFrame(columns)

    @staticmethod
    def _column_array(values: list, ltype: LogicalType) -> np.ndarray:
        if ltype == LogicalType.DATE:
            return np.array([np.datetime64(int(v), "ns") if v is not None else
                             np.datetime64("NaT") for v in values],
                            dtype="datetime64[ns]").astype("datetime64[D]")
        if ltype == LogicalType.STRING:
            return np.array(["" if v is None else v for v in values], dtype=object)
        if ltype == LogicalType.FLOAT:
            return np.array([np.nan if v is None else float(v) for v in values],
                            dtype=np.float64)
        if ltype == LogicalType.BOOL:
            return np.array([bool(v) for v in values], dtype=bool)
        if any(v is None for v in values):
            # NULL-able integers keep their NULLs (matching the tensor
            # engine's validity-masked columns) instead of collapsing to 0.
            return np.array([None if v is None else int(v) for v in values],
                            dtype=object)
        return np.array([int(v) for v in values], dtype=np.int64)

    # -- subquery support --------------------------------------------------------

    def subquery_rows(self, subplan: phys.PhysicalNode) -> list[Row]:
        key = id(subplan)
        if key not in self._subquery_cache:
            self._subquery_cache[key] = self.execute(subplan)
        return self._subquery_cache[key]

    def subquery_column(self, subplan: phys.PhysicalNode) -> set:
        rows = self.subquery_rows(subplan)
        name = subplan.schema()[0].name
        return {row[name] for row in rows}

    def subquery_scalar(self, subplan: phys.PhysicalNode) -> Any:
        rows = self.subquery_rows(subplan)
        if not rows:
            return None
        name = subplan.schema()[0].name
        return rows[0][name]

    # -- operators -------------------------------------------------------------------

    def _execute(self, plan: phys.PhysicalNode) -> Iterable[Row]:
        if isinstance(plan, phys.PhysicalScan):
            return self._scan(plan)
        if isinstance(plan, phys.PhysicalFilter):
            return self._filter(plan)
        if isinstance(plan, phys.PhysicalProject):
            return self._project(plan)
        if isinstance(plan, phys.PhysicalHashJoin):
            return self._hash_join(plan)
        if isinstance(plan, phys.PhysicalNestedLoopJoin):
            return self._nested_loop_join(plan)
        if isinstance(plan, phys.PhysicalHashAggregate):
            return self._aggregate(plan)
        if isinstance(plan, phys.PhysicalSort):
            return self._sort(plan)
        if isinstance(plan, phys.PhysicalLimit):
            return self.execute(plan.child)[: plan.count]
        if isinstance(plan, phys.PhysicalDistinct):
            return self._distinct(plan)
        if isinstance(plan, phys.PhysicalRename):
            return self._rename(plan)
        raise UnsupportedOperationError(
            f"row engine cannot execute {type(plan).__name__}"
        )

    def _scan(self, plan: phys.PhysicalScan) -> list[Row]:
        frame = self.dataframes.get(plan.table.lower())
        if frame is None:
            raise ExecutionError(f"row engine: unknown table {plan.table!r}")
        columns = []
        for field in plan.fields:
            base = field.name.split(".", 1)[1] if "." in field.name else field.name
            values = frame[base]
            if values.dtype.kind == "M":
                values = values.astype("datetime64[ns]").astype(np.int64)
            columns.append((field.name, values))
        count = frame.num_rows
        return [
            {name: values[i].item() if hasattr(values[i], "item") else values[i]
             for name, values in columns}
            for i in range(count)
        ]

    def _filter(self, plan: phys.PhysicalFilter) -> list[Row]:
        return [row for row in self._execute(plan.child)
                if self.evaluator.evaluate(plan.condition, row)]

    def _project(self, plan: phys.PhysicalProject) -> list[Row]:
        out = []
        for row in self._execute(plan.child):
            out.append({
                name: self.evaluator.evaluate(expr, row)
                for expr, name in zip(plan.exprs, plan.names)
            })
        return out

    def _hash_join(self, plan: phys.PhysicalHashJoin) -> list[Row]:
        left_rows = self.execute(plan.left)
        right_rows = self.execute(plan.right)
        build: dict[tuple, list[Row]] = {}
        for row in right_rows:
            key = tuple(self.evaluator.evaluate(k, row) for k in plan.right_keys)
            build.setdefault(key, []).append(row)
        right_nulls = {f.name: None for f in plan.right.schema()}
        out: list[Row] = []
        for row in left_rows:
            key = tuple(self.evaluator.evaluate(k, row) for k in plan.left_keys)
            matches = build.get(key, [])
            if plan.residual is not None and matches:
                matches = [m for m in matches
                           if self.evaluator.evaluate(plan.residual, {**row, **m})]
            if plan.kind == "inner":
                out.extend({**row, **m} for m in matches)
            elif plan.kind == "left":
                if matches:
                    out.extend({**row, **m} for m in matches)
                else:
                    out.append({**row, **right_nulls})
            elif plan.kind == "semi":
                if matches:
                    out.append(row)
            elif plan.kind == "anti":
                if not matches:
                    out.append(row)
            else:
                raise UnsupportedOperationError(f"join kind {plan.kind!r}")
        return out

    def _nested_loop_join(self, plan: phys.PhysicalNestedLoopJoin) -> list[Row]:
        left_rows = self.execute(plan.left)
        right_rows = self.execute(plan.right)
        out: list[Row] = []
        for left_row in left_rows:
            matches = []
            for right_row in right_rows:
                combined = {**left_row, **right_row}
                if plan.condition is None or self.evaluator.evaluate(plan.condition,
                                                                     combined):
                    matches.append(combined)
            if plan.kind in ("inner", "cross"):
                out.extend(matches)
            elif plan.kind == "semi" and matches:
                out.append(left_row)
            elif plan.kind == "anti" and not matches:
                out.append(left_row)
        return out

    def _aggregate(self, plan: phys.PhysicalHashAggregate) -> list[Row]:
        rows = self.execute(plan.child)
        groups: dict[tuple, list[Row]] = {}
        keys_of_group: dict[tuple, list] = {}
        for row in rows:
            key = tuple(self.evaluator.evaluate(expr, row) for expr in plan.group_exprs)
            groups.setdefault(key, []).append(row)
            keys_of_group.setdefault(key, list(key))
        if not plan.group_exprs and not groups:
            groups[()] = []
            keys_of_group[()] = []
        out: list[Row] = []
        for key, group_rows in groups.items():
            row_out: Row = {}
            for name, value in zip(plan.group_names, keys_of_group[key]):
                row_out[name] = value
            for call in plan.aggregates:
                row_out[call.output_name] = self._aggregate_value(call, group_rows)
            out.append(row_out)
        return out

    def _aggregate_value(self, call: AggregateCall, rows: list[Row]) -> Any:
        if call.func == "count" and call.expr is None:
            return len(rows)
        values = [self.evaluator.evaluate(call.expr, row) for row in rows]
        values = [v for v in values if v is not None]
        if call.distinct:
            values = list(set(values))
        if call.func == "count":
            return len(values)
        if not values:
            return None
        if call.func == "sum":
            return sum(values)
        if call.func == "avg":
            return sum(values) / len(values)
        if call.func == "min":
            return min(values)
        if call.func == "max":
            return max(values)
        raise UnsupportedOperationError(f"aggregate {call.func!r}")

    def _sort(self, plan: phys.PhysicalSort) -> list[Row]:
        rows = self.execute(plan.child)
        # Stable sort from the least significant key to the most significant.
        for expr, ascending in reversed(plan.keys):
            rows.sort(key=lambda row: self.evaluator.evaluate(expr, row),
                      reverse=not ascending)
        return rows

    def _distinct(self, plan: phys.PhysicalDistinct) -> list[Row]:
        names = plan.field_names()
        seen = set()
        out = []
        for row in self._execute(plan.child):
            key = tuple(row[name] for name in names)
            if key not in seen:
                seen.add(key)
                out.append(row)
        return out

    def _rename(self, plan: phys.PhysicalRename) -> list[Row]:
        child_names = plan.child.field_names()
        output_names = [f.name for f in plan.output_fields]
        out = []
        for row in self._execute(plan.child):
            out.append({new: row[old] for old, new in zip(child_names, output_names)})
        return out


def run_sql(sql: str, dataframes: dict[str, DataFrame],
            models: Optional[dict[str, Callable]] = None,
            params: Optional[dict[str, Any]] = None) -> DataFrame:
    """Convenience: run ``sql`` through the shared frontend on the row engine.

    ``params`` binds ``:name`` / ``?`` markers in the text; values are
    normalized through the same validation as the tensor engine so both
    engines agree on e.g. date representations.
    """
    from repro.core.parameters import ParameterSpec, bind_parameters
    from repro.frontend import Catalog, sql_to_physical
    from repro.frontend.optimizer import node_expressions_physical
    from repro.frontend.physical import walk_physical

    catalog = Catalog()
    for name, frame in dataframes.items():
        catalog.register(name, frame)
    plan = sql_to_physical(sql, catalog)
    normalized: dict[str, Any] = {}
    if params:
        specs: list[ParameterSpec] = []
        seen: set[str] = set()

        def collect(physical_plan: phys.PhysicalNode) -> None:
            for node in walk_physical(physical_plan):
                for expr in node_expressions_physical(node):
                    for sub in ast.walk_expr(expr):
                        if isinstance(sub, ast.ParameterExpr) and sub.name not in seen:
                            seen.add(sub.name)
                            specs.append(ParameterSpec(sub.name, sub.otype,
                                                       sub.position, sub.positional))
                        subplan = getattr(sub, "subplan", None)
                        if isinstance(subplan, phys.PhysicalNode):
                            collect(subplan)

        collect(plan)
        normalized = bind_parameters(specs, params)
    return RowEngine(dataframes, models,
                     params=normalized).execute_to_dataframe(plan)


