"""Baseline comparators: the row-at-a-time engine (Spark CPU stand-in)."""

from repro.baselines.rowengine import RowEngine, run_sql

__all__ = ["RowEngine", "run_sql"]
