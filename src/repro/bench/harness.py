"""Shared benchmark harness.

Implements the paper's measurement protocol: compile once, run several warm-up
iterations, then report the **median** execution time of the measured runs
(paper §2.3 uses the median of 5 runs after 5 warm-ups).  For the simulated
devices (cuda / wasm) the reported time comes from the documented cost models;
the result tables always say which numbers are measured and which simulated.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import statistics
import time
from typing import Callable, Optional

from repro.baselines import RowEngine
from repro.core.options import ExecutionOptions
from repro.core.session import TQPSession
from repro.dataframe import DataFrame
from repro.datasets import tpch
from repro.frontend import sql_to_physical

#: Session/table cache so several benchmarks can share one generated dataset.
_TPCH_CACHE: dict[tuple[float, int], tuple[TQPSession, dict[str, DataFrame]]] = {}


def tpch_session(scale_factor: float = 0.01, seed: int = 19920101
                 ) -> tuple[TQPSession, dict[str, DataFrame]]:
    """A TQP session with the TPC-H tables registered (cached per SF/seed).

    Tables come from the on-disk ``.tbl`` cache
    (:func:`repro.datasets.tpch.cached_tables`): the first run for a
    ``(scale factor, seed)`` pair generates and saves them, later benchmark
    and CI runs load them instead of regenerating.
    """
    key = (scale_factor, seed)
    if key not in _TPCH_CACHE:
        tables = tpch.cached_tables(scale_factor=scale_factor, seed=seed)
        session = TQPSession()
        for name, frame in tables.items():
            session.register(name, frame)
        _TPCH_CACHE[key] = (session, tables)
    return _TPCH_CACHE[key]


@dataclasses.dataclass
class BenchResult:
    """Timing of one (system, query) cell."""

    system: str
    backend: str
    device: str
    simulated: bool
    times_s: list[float]
    result: DataFrame
    #: Session plan-cache counters observed for this measurement (hit/miss/…),
    #: plus whether this compile was served from the cache.  ``None`` for
    #: systems without a plan cache (the row-engine baseline).
    plan_cache: Optional[dict] = None
    #: Host wall-clock (``perf_counter``) per run.  ``times_s`` holds the
    #: *reported* time, which on the simulated devices comes from a cost
    #: model; this column is always real elapsed time, so executor-level
    #: wins (e.g. compiled vs interpreted replay) stay visible even when
    #: the simulated numbers are identical by construction.
    wall_times_s: list[float] = dataclasses.field(default_factory=list)

    @property
    def median_s(self) -> float:
        return statistics.median(self.times_s)

    @property
    def median_ms(self) -> float:
        return self.median_s * 1e3

    @property
    def median_wall_s(self) -> float:
        return statistics.median(self.wall_times_s or self.times_s)

    @property
    def median_wall_ms(self) -> float:
        return self.median_wall_s * 1e3


def time_tqp(session: TQPSession, sql: str, backend: str = "torchscript",
             device: str = "cpu", runs: int = 5, warmup: int = 2,
             profile: bool = False, use_cache: bool = True,
             parallelism: Optional[int] = None,
             executor: str = "auto",
             devices: Optional[int] = None,
             shard: str = "hash") -> BenchResult:
    """Compile ``sql`` once and measure ``runs`` executions after ``warmup``.

    Passing ``parallelism`` (any value, including 1) forces profiling on so
    the device cost models see the per-worker-lane timelines — and so every
    point of a scaling curve reports on the same basis (the CPU device reports
    kernel time for profiled runs, wall time otherwise; mixing the two would
    make speedups incomparable).  ``devices`` (any value, including 1) does
    the same for the per-shard timelines of distributed plans, so
    single-device vs multi-device points stay comparable too.
    """
    if parallelism is not None or devices is not None:
        profile = True
    hits_before = session.plan_cache.hits
    compile_start = time.perf_counter()
    query = session.compile(sql, options=ExecutionOptions(
        backend=backend, device=device, use_cache=use_cache,
        parallelism=parallelism, executor=executor,
        devices=devices, shard=shard))
    compile_s = time.perf_counter() - compile_start
    inputs = session.prepare_inputs(query.executor)
    for _ in range(warmup):
        query.executor.execute(inputs, profile=profile)
    times, walls, last = [], [], None
    for _ in range(runs):
        outcome = query.executor.execute(inputs, profile=profile)
        times.append(outcome.reported_s)
        walls.append(outcome.measured_s)
        last = outcome
    cache_stats = dict(session.plan_cache.stats())
    cache_stats["compile_s"] = compile_s
    cache_stats["served_from_cache"] = session.plan_cache.hits > hits_before
    return BenchResult(
        system=f"TQP-{device.upper()}" if device != "cpu" else "TQP-CPU",
        backend=backend, device=device,
        simulated=query.executor.device.is_simulated,
        times_s=times, result=last.to_dataframe(),
        plan_cache=cache_stats, wall_times_s=walls,
    )


def write_bench_json(path: "str | pathlib.Path", payload: dict) -> pathlib.Path:
    """Write one benchmark's machine-readable artifact (``--json-out``).

    The payload is augmented with a schema tag and a wall-clock stamp so CI
    artifacts from different runs can be told apart; parent directories are
    created as needed.  Returns the resolved path.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"schema": "tqp-bench/v1",
              "generated_unix_s": round(time.time(), 3)}
    record.update(payload)
    path.write_text(json.dumps(record, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def time_rowengine(session: TQPSession, tables: dict[str, DataFrame], sql: str,
                   runs: int = 1, warmup: int = 0,
                   models: Optional[dict[str, Callable]] = None,
                   label: str = "RowEngine (Spark-CPU stand-in)") -> BenchResult:
    """Measure the row-at-a-time baseline on the same physical plan."""
    plan = sql_to_physical(sql, session.catalog)
    engine = RowEngine(tables, models=models)
    for _ in range(warmup):
        engine.execute(plan)
    times, frame = [], None
    for _ in range(runs):
        start = time.perf_counter()
        frame = engine.execute_to_dataframe(plan)
        times.append(time.perf_counter() - start)
    return BenchResult(system=label, backend="row-interpreter", device="cpu",
                       simulated=False, times_s=times, result=frame,
                       wall_times_s=list(times))
