"""Benchmark result formatting: the rows/series the paper's figures report."""

from __future__ import annotations

from typing import Sequence

from repro.bench.harness import BenchResult


def figure_table(title: str, results: Sequence[BenchResult],
                 baseline: BenchResult | None = None) -> str:
    """Render a figure's series as a text table with speedups vs. a baseline."""
    lines = [title, "=" * len(title),
             f"{'system':<34} {'backend':<14} {'time ms':>12} {'wall ms':>12} "
             f"{'speedup':>9}  note"]
    reference = baseline.median_s if baseline is not None else None
    rows = ([baseline] if baseline is not None else []) + [
        r for r in results if r is not baseline
    ]
    for row in rows:
        speedup = ""
        if reference is not None and row.median_s > 0:
            speedup = f"{reference / row.median_s:>8.1f}x"
        note = "simulated time" if row.simulated else "measured"
        lines.append(f"{row.system:<34} {row.backend:<14} {row.median_ms:>12.2f} "
                     f"{row.median_wall_ms:>12.2f} {speedup:>9}  {note}")
    return "\n".join(lines)


def series_dict(results: Sequence[BenchResult]) -> dict[str, float]:
    """Figure series as {system: median_ms} (handy for plotting or asserts)."""
    return {r.system: r.median_ms for r in results}
