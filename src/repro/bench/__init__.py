"""Benchmark harness helpers shared by the ``benchmarks/`` suite."""

from repro.bench.harness import (
    BenchResult,
    time_rowengine,
    time_tqp,
    tpch_session,
    write_bench_json,
)
from repro.bench.reporting import figure_table, series_dict

__all__ = ["BenchResult", "figure_table", "series_dict", "time_rowengine",
           "time_tqp", "tpch_session", "write_bench_json"]
